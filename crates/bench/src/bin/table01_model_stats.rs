//! **Table I** — heterogeneity in the DNN models used by the AR/VR and
//! MLPerf workloads: channel-activation size ratio (min / median / max)
//! and operator sets per model.

use herald_models::{zoo, ModelStats};

fn main() {
    println!("Table I: heterogeneity in evaluated DNN models");
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>12}  operators",
        "model", "layers", "ratio min", "median", "max"
    );
    let mut spread_min = f64::INFINITY;
    let mut spread_max = 0.0f64;
    for model in zoo::all_models() {
        let s = ModelStats::for_model(&model);
        let ops: Vec<&str> = s.ops.iter().map(|o| o.mnemonic()).collect();
        println!(
            "{:<18} {:>7} {:>12.4} {:>12.3} {:>12.3}  {}",
            s.model,
            s.num_layers,
            s.min_channel_activation_ratio,
            s.median_channel_activation_ratio,
            s.max_channel_activation_ratio,
            ops.join(", ")
        );
        spread_min = spread_min.min(s.min_channel_activation_ratio);
        spread_max = spread_max.max(s.max_channel_activation_ratio);
    }
    println!(
        "\nlargest / smallest ratio across models: {:.0}x (paper quotes 315076x)",
        spread_max / spread_min
    );
}
