//! **Fig. 13** — robustness to workload change after deployment, as one
//! *continuous* event-driven simulation: a periodic stream of full
//! multi-DNN frames runs AR/VR-A on a Maelstrom HDA whose partition was
//! optimized for AR/VR-A, swaps to the heavier AR/VR-B mid-stream (only
//! the compile-time scheduler re-runs, online, at each arrival), and
//! swaps back. The deadline-miss-rate transient around the swap events —
//! queueing backlog building up while B frames contend with still-
//! draining A frames, then draining after the return swap — falls
//! directly out of the stream report's windowed miss rates; no stitching
//! of independent one-shot runs.
//!
//! Expected shape (paper): the fixed HDA absorbs the workload change with
//! a modest latency penalty and keeps beating the best FDA, which shows a
//! deeper and longer miss transient on the same trace.
//!
//! Pass `--json` to emit a machine-readable record (per-class HDA/FDA
//! rows with windowed transients) — the golden-file regression suite
//! diffs this output field by field across PRs.

use herald::prelude::*;
use herald_bench::{bench_args, evaluate_fixed, search_hda, stream_fixed};

fn main() -> Result<(), HeraldError> {
    let args = bench_args();
    let (fast, json_mode) = (args.fast, args.json);
    let classes: &[AcceleratorClass] = if fast {
        &[AcceleratorClass::Edge]
    } else {
        &AcceleratorClass::ALL
    };
    let mut classes_json = Vec::new();

    if !json_mode {
        println!(
            "Fig. 13: workload-change study — one continuous stream, A -> B -> A\n\
             (HDA partition optimized for AR/VR-A only; scheduler re-runs online)"
        );
    }

    for &class in classes {
        // The deployed hardware: a Maelstrom HDA optimized for AR/VR-A.
        let hda = search_hda(
            &herald_workloads::arvr_a(),
            class,
            &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
            fast,
        )?;
        let config = hda.best().config.clone();

        // Steady-state single-frame service times on the fixed hardware
        // size the stream. The stream runs the lighter workload, swaps to
        // the heavier one, and swaps back: the period leaves headroom
        // under the light phase but not under the heavy one, so the swap
        // produces a genuine queueing-backlog transient that drains after
        // the return swap.
        let lat_a = evaluate_fixed(&herald_workloads::arvr_a(), config.clone(), fast)?.latency_s();
        let lat_b = evaluate_fixed(&herald_workloads::arvr_b(), config.clone(), fast)?.latency_s();
        let ((light_name, light, lat_light), (heavy_name, heavy, lat_heavy)) = if lat_a <= lat_b {
            (
                ("A", herald_workloads::arvr_a(), lat_a),
                ("B", herald_workloads::arvr_b(), lat_b),
            )
        } else {
            (
                ("B", herald_workloads::arvr_b(), lat_b),
                ("A", herald_workloads::arvr_a(), lat_a),
            )
        };
        let period = 1.25 * lat_light;
        let deadline = 1.2 * lat_heavy;
        let frames = if fast { 16 } else { 20 };
        let horizon = frames as f64 * period;
        let (swap_to_heavy, swap_back) = (4.0 * period, 8.0 * period);

        let scenario = Scenario::new(format!("workload-change/{class}"), horizon).stream(
            StreamSpec::periodic("arvr", light.clone(), 1.0 / period)
                .with_deadline(deadline)
                .swap_at(swap_to_heavy, heavy)
                .swap_at(swap_back, light),
        );

        if !json_mode {
            println!(
                "\n--- {class}: {light_name} -> {heavy_name} -> {light_name}, \
                 period {period:.4} s, deadline {deadline:.4} s \
                 (single-frame A {lat_a:.4} s, B {lat_b:.4} s) ---"
            );
        }

        let hda_report = stream_fixed(&scenario, config, fast)?;
        // The best FDA on the same trace (lowest streamed p95 latency
        // across all three styles).
        let mut best_fda: Option<StreamOutcome> = None;
        for style in DataflowStyle::ALL {
            let fda = stream_fixed(
                &scenario,
                AcceleratorConfig::fda(style, class.resources()),
                fast,
            )?;
            let better = best_fda.as_ref().is_none_or(|b| {
                fda.report().latency_percentile(0.95) < b.report().latency_percentile(0.95)
            });
            if better {
                best_fda = Some(fda);
            }
        }
        let Some(fda_report) = best_fda else {
            unreachable!("DataflowStyle::ALL is non-empty");
        };

        let fda_label = format!("best FDA ({})", fda_report.accelerator);
        let mut rows_json = Vec::new();
        for (label, outcome) in [("HDA-A", &hda_report), (fda_label.as_str(), &fda_report)] {
            let r = outcome.report();
            assert_eq!(r.swaps().len(), 2, "both swap events simulated");
            if !json_mode {
                println!(
                    "{label}: {} frames, throughput {:.3} fps, p95 latency {:.4} s, \
                     overall miss rate {:.1}%",
                    r.frames().len(),
                    r.throughput_fps(),
                    r.latency_percentile(0.95),
                    r.deadline_miss_rate() * 100.0
                );
                println!(
                    "  {:<24} {:>8} {:>14} {:>12}",
                    "window", "frames", "mean lat (s)", "miss rate"
                );
            }
            let window = 2.0 * period;
            let mut windows_json = Vec::new();
            let mut t = 0.0;
            while t < horizon {
                let t1 = (t + window).min(horizon);
                let n = r
                    .frames()
                    .iter()
                    .filter(|f| f.arrival_s >= t && f.arrival_s < t1)
                    .count();
                let phase = if t1 <= swap_to_heavy {
                    "light"
                } else if t >= swap_back {
                    "recovered"
                } else {
                    "heavy"
                };
                let mean_latency_s = r.mean_latency_between(t, t1);
                let miss_rate = r.miss_rate_between(t, t1);
                if !json_mode {
                    println!(
                        "  [{:6.3}, {:6.3}) {:<8} {:>8} {:>14.4} {:>11.1}%",
                        t,
                        t1,
                        phase,
                        n,
                        mean_latency_s,
                        miss_rate * 100.0
                    );
                }
                windows_json.push(serde_json::json!({
                    "t0_s": t,
                    "t1_s": t1,
                    "phase": phase,
                    "frames": n,
                    "mean_latency_s": mean_latency_s,
                    "miss_rate": miss_rate,
                }));
                t = t1;
            }
            let pre = r.miss_rate_between(0.0, swap_to_heavy);
            let during = r.miss_rate_between(swap_to_heavy, swap_back);
            let post = r.miss_rate_between(swap_back, horizon);
            if !json_mode {
                println!(
                    "  transient: miss rate {:.1}% before swap -> {:.1}% during \
                     {heavy_name} -> {:.1}% after return",
                    pre * 100.0,
                    during * 100.0,
                    post * 100.0
                );
            }
            rows_json.push(serde_json::json!({
                "label": label,
                "accelerator": outcome.accelerator.clone(),
                "frames": r.frames().len(),
                "throughput_fps": r.throughput_fps(),
                "p95_latency_s": r.latency_percentile(0.95),
                "deadline_miss_rate": r.deadline_miss_rate(),
                "energy_j": r.total_energy_j(),
                "miss_rate_pre_swap": pre,
                "miss_rate_during_heavy": during,
                "miss_rate_post_return": post,
                "windows": serde_json::Value::Seq(windows_json),
            }));
        }

        let hda_r = hda_report.report();
        let fda_r = fda_report.report();
        if !json_mode {
            println!(
                "HDA vs FDA under the change: p95 latency {:+.1}%, miss rate {:+.1} pp, \
                 energy {:+.1}%",
                (1.0 - hda_r.latency_percentile(0.95) / fda_r.latency_percentile(0.95)) * 100.0,
                (hda_r.deadline_miss_rate() - fda_r.deadline_miss_rate()) * 100.0,
                (1.0 - hda_r.total_energy_j() / fda_r.total_energy_j()) * 100.0
            );
        }
        classes_json.push(serde_json::json!({
            "class": class.to_string(),
            "light": light_name,
            "heavy": heavy_name,
            "period_s": period,
            "deadline_s": deadline,
            "single_frame_a_s": lat_a,
            "single_frame_b_s": lat_b,
            "rows": serde_json::Value::Seq(rows_json),
        }));
    }

    if json_mode {
        let record = serde_json::json!({
            "bench": "fig13_workload_change",
            "fast": fast,
            "classes": serde_json::Value::Seq(classes_json),
        });
        println!("{}", record.to_json_pretty());
    }
    Ok(())
}
