//! **Fig. 13** — robustness to workload change after deployment: fix each
//! Maelstrom design at the partition optimized for one workload, then run
//! the *other* workloads on it with only the (compile-time) scheduler
//! re-run. Compares against FDA, SM-FDA and RDA baselines, averaged over
//! accelerator classes.
//!
//! Expected shape (paper): running a different workload than the one the
//! HDA was optimized for costs only ~4% latency / ~0.1% energy on
//! average; the fixed HDAs keep beating FDAs and keep their energy
//! advantage over the RDA.

use herald::prelude::*;
use herald_bench::{evaluate_fixed, fast_mode, gain_pct, search_hda};
use herald_core::dse::DesignPoint;
use herald_workloads::MultiDnnWorkload;

fn main() -> Result<(), HeraldError> {
    let fast = fast_mode();
    let classes: &[AcceleratorClass] = if fast {
        &[AcceleratorClass::Edge]
    } else {
        &AcceleratorClass::ALL
    };
    let workloads: Vec<MultiDnnWorkload> = if fast {
        vec![herald_workloads::mlperf(1), herald_workloads::arvr_a()]
    } else {
        herald_workloads::all_workloads()
    };

    println!("Fig. 13: workload-change study (HDA-X = Maelstrom optimized for workload X)");

    // Optimize one Maelstrom per (workload, class).
    let mut designs: Vec<Vec<DesignPoint>> = Vec::new(); // [workload][class]
    for w in &workloads {
        let mut per_class = Vec::new();
        for &class in classes {
            let outcome = search_hda(
                w,
                class,
                &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
                fast,
            )?;
            per_class.push(outcome.best().clone());
        }
        designs.push(per_class);
    }

    // Re-running workload j on design i's fixed hardware is a fixed-target
    // experiment on that design's configuration.
    let reschedule = |wj: &MultiDnnWorkload, design: &DesignPoint| -> Result<_, HeraldError> {
        evaluate_fixed(wj, design.config.clone(), fast)
    };

    // Cross matrix: run workload j on the design optimized for workload i.
    println!(
        "\n{:<10} {:<12} {:>14} {:>14}",
        "design", "workload", "avg lat (s)", "avg energy (J)"
    );
    let mut self_lat = vec![0.0f64; workloads.len()];
    let mut self_energy = vec![0.0f64; workloads.len()];
    let mut cross_penalty_lat = Vec::new();
    let mut cross_penalty_energy = Vec::new();

    // First pass: the matched (diagonal) numbers.
    for (i, _) in workloads.iter().enumerate() {
        self_lat[i] =
            designs[i].iter().map(DesignPoint::latency_s).sum::<f64>() / classes.len() as f64;
        self_energy[i] =
            designs[i].iter().map(DesignPoint::energy_j).sum::<f64>() / classes.len() as f64;
    }

    for (i, _) in workloads.iter().enumerate() {
        for (j, wj) in workloads.iter().enumerate() {
            let (mut lat, mut energy) = (0.0f64, 0.0f64);
            for (c, _) in classes.iter().enumerate() {
                let outcome = reschedule(wj, &designs[i][c])?;
                lat += outcome.latency_s();
                energy += outcome.energy_j();
            }
            lat /= classes.len() as f64;
            energy /= classes.len() as f64;
            println!(
                "HDA-{:<5} {:<12} {:>14.5} {:>14.5}{}",
                short(&workloads[i]),
                wj.name(),
                lat,
                energy,
                if i == j { "   (matched)" } else { "" }
            );
            if i != j {
                cross_penalty_lat.push(lat / self_lat[j] - 1.0);
                cross_penalty_energy.push(energy / self_energy[j] - 1.0);
            }
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverage mismatch penalty: latency {:+.1}%, energy {:+.1}% \
         (paper: +4.0% latency, +0.1% energy)",
        avg(&cross_penalty_lat) * 100.0,
        avg(&cross_penalty_energy) * 100.0
    );

    // Baseline comparison under workload change, averaged over all
    // (design, workload, class) mismatched combinations.
    let mut vs_fda_lat = Vec::new();
    let mut vs_fda_energy = Vec::new();
    let mut vs_rda_lat = Vec::new();
    let mut vs_rda_energy = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for (j, wj) in workloads.iter().enumerate() {
            if i == j {
                continue;
            }
            for (c, &class) in classes.iter().enumerate() {
                let res = class.resources();
                let hda = reschedule(wj, &designs[i][c])?;
                let mut best_fda: Option<ExperimentOutcome> = None;
                for s in DataflowStyle::ALL {
                    let fda = evaluate_fixed(wj, AcceleratorConfig::fda(s, res), fast)?;
                    if best_fda.as_ref().is_none_or(|b| fda.edp() < b.edp()) {
                        best_fda = Some(fda);
                    }
                }
                let Some(best_fda) = best_fda else {
                    unreachable!("DataflowStyle::ALL is non-empty");
                };
                let rda = evaluate_fixed(wj, AcceleratorConfig::rda(res), fast)?;
                vs_fda_lat.push(gain_pct(best_fda.latency_s(), hda.latency_s()));
                vs_fda_energy.push(gain_pct(best_fda.energy_j(), hda.energy_j()));
                vs_rda_lat.push(gain_pct(rda.latency_s(), hda.latency_s()));
                vs_rda_energy.push(gain_pct(rda.energy_j(), hda.energy_j()));
            }
        }
    }
    println!(
        "fixed HDAs vs FDAs under workload change: latency {:+.1}%, energy {:+.1}% \
         (paper: +30.0%, +6.5%)",
        avg(&vs_fda_lat),
        avg(&vs_fda_energy)
    );
    println!(
        "fixed HDAs vs RDA under workload change: latency {:+.1}%, energy {:+.1}% \
         (paper: -28.6%, +19.4%)",
        avg(&vs_rda_lat),
        avg(&vs_rda_energy)
    );
    Ok(())
}

fn short(w: &MultiDnnWorkload) -> String {
    match w.name() {
        "AR/VR-A" => "A".into(),
        "AR/VR-B" => "B".into(),
        n if n.starts_with("MLPerf") => "M".into(),
        other => other.chars().take(3).collect(),
    }
}
