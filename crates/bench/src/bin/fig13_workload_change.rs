//! **Fig. 13** — robustness to workload change after deployment: fix each
//! Maelstrom design at the partition optimized for one workload, then run
//! the *other* workloads on it with only the (compile-time) scheduler
//! re-run. Compares against FDA, SM-FDA and RDA baselines, averaged over
//! accelerator classes.
//!
//! Expected shape (paper): running a different workload than the one the
//! HDA was optimized for costs only ~4% latency / ~0.1% energy on
//! average; the fixed HDAs keep beating FDAs and keep their energy
//! advantage over the RDA.

use herald_arch::{AcceleratorClass, AcceleratorConfig};
use herald_bench::{dse_config, fast_mode, gain_pct};
use herald_core::dse::{DesignPoint, DseEngine};
use herald_dataflow::DataflowStyle;
use herald_workloads::MultiDnnWorkload;

fn main() {
    let fast = fast_mode();
    let dse = DseEngine::new(dse_config(fast));
    let classes: &[AcceleratorClass] = if fast {
        &[AcceleratorClass::Edge]
    } else {
        &AcceleratorClass::ALL
    };
    let workloads: Vec<MultiDnnWorkload> = if fast {
        vec![herald_workloads::mlperf(1), herald_workloads::arvr_a()]
    } else {
        herald_workloads::all_workloads()
    };

    println!("Fig. 13: workload-change study (HDA-X = Maelstrom optimized for workload X)");

    // Optimize one Maelstrom per (workload, class).
    let mut designs: Vec<Vec<DesignPoint>> = Vec::new(); // [workload][class]
    for w in &workloads {
        let mut per_class = Vec::new();
        for &class in classes {
            let outcome = dse.co_optimize(
                w,
                class.resources(),
                &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
            );
            per_class.push(outcome.best().expect("non-empty sweep").clone());
        }
        designs.push(per_class);
    }

    // Cross matrix: run workload j on the design optimized for workload i.
    println!(
        "\n{:<10} {:<12} {:>14} {:>14}",
        "design", "workload", "avg lat (s)", "avg energy (J)"
    );
    let mut self_lat = vec![0.0f64; workloads.len()];
    let mut self_energy = vec![0.0f64; workloads.len()];
    let mut cross_penalty_lat = Vec::new();
    let mut cross_penalty_energy = Vec::new();

    // First pass: the matched (diagonal) numbers.
    for (i, w) in workloads.iter().enumerate() {
        let lat: f64 = designs[i].iter().map(DesignPoint::latency_s).sum::<f64>()
            / classes.len() as f64;
        let energy: f64 = designs[i].iter().map(DesignPoint::energy_j).sum::<f64>()
            / classes.len() as f64;
        self_lat[i] = lat;
        self_energy[i] = energy;
        let _ = w;
    }

    for (i, _) in workloads.iter().enumerate() {
        for (j, wj) in workloads.iter().enumerate() {
            let (mut lat, mut energy) = (0.0f64, 0.0f64);
            for (c, _) in classes.iter().enumerate() {
                let report = dse.reschedule(wj, &designs[i][c]);
                lat += report.total_latency_s();
                energy += report.total_energy_j();
            }
            lat /= classes.len() as f64;
            energy /= classes.len() as f64;
            println!(
                "HDA-{:<5} {:<12} {:>14.5} {:>14.5}{}",
                short(&workloads[i]),
                wj.name(),
                lat,
                energy,
                if i == j { "   (matched)" } else { "" }
            );
            if i != j {
                cross_penalty_lat.push(lat / self_lat[j] - 1.0);
                cross_penalty_energy.push(energy / self_energy[j] - 1.0);
            }
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverage mismatch penalty: latency {:+.1}%, energy {:+.1}% \
         (paper: +4.0% latency, +0.1% energy)",
        avg(&cross_penalty_lat) * 100.0,
        avg(&cross_penalty_energy) * 100.0
    );

    // Baseline comparison under workload change, averaged over all
    // (design, workload, class) mismatched combinations.
    let mut vs_fda_lat = Vec::new();
    let mut vs_fda_energy = Vec::new();
    let mut vs_rda_lat = Vec::new();
    let mut vs_rda_energy = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for (j, wj) in workloads.iter().enumerate() {
            if i == j {
                continue;
            }
            for (c, &class) in classes.iter().enumerate() {
                let res = class.resources();
                let hda = dse.reschedule(wj, &designs[i][c]);
                let best_fda = DataflowStyle::ALL
                    .into_iter()
                    .map(|s| dse.evaluate_config(wj, &AcceleratorConfig::fda(s, res)))
                    .min_by(|a, b| a.edp().partial_cmp(&b.edp()).expect("finite EDP"))
                    .expect("three FDAs");
                let rda = dse.evaluate_config(wj, &AcceleratorConfig::rda(res));
                vs_fda_lat.push(gain_pct(best_fda.total_latency_s(), hda.total_latency_s()));
                vs_fda_energy.push(gain_pct(best_fda.total_energy_j(), hda.total_energy_j()));
                vs_rda_lat.push(gain_pct(rda.total_latency_s(), hda.total_latency_s()));
                vs_rda_energy.push(gain_pct(rda.total_energy_j(), hda.total_energy_j()));
            }
        }
    }
    println!(
        "fixed HDAs vs FDAs under workload change: latency {:+.1}%, energy {:+.1}% \
         (paper: +30.0%, +6.5%)",
        avg(&vs_fda_lat),
        avg(&vs_fda_energy)
    );
    println!(
        "fixed HDAs vs RDA under workload change: latency {:+.1}%, energy {:+.1}% \
         (paper: -28.6%, +19.4%)",
        avg(&vs_rda_lat),
        avg(&vs_rda_energy)
    );
}

fn short(w: &MultiDnnWorkload) -> String {
    match w.name() {
        "AR/VR-A" => "A".into(),
        "AR/VR-B" => "B".into(),
        n if n.starts_with("MLPerf") => "M".into(),
        other => other.chars().take(3).collect(),
    }
}
