//! The six convolution loop dimensions.

use herald_models::Layer;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A convolution loop dimension, named as in the paper's Fig. 4 loop nests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// Output channels.
    K,
    /// Input channels.
    C,
    /// Output activation rows.
    Y,
    /// Output activation columns.
    X,
    /// Filter rows.
    R,
    /// Filter columns.
    S,
}

impl Dim {
    /// All six dimensions in canonical order.
    pub const ALL: [Dim; 6] = [Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];

    /// The *iteration extent* of this dimension for a layer. Spatial
    /// dimensions use the **output** size (the loops of Fig. 4 iterate over
    /// output pixels; input pixels are derived as `y + r`).
    ///
    /// For transposed convolutions the loops likewise iterate over the
    /// up-scaled output, so the filter extents shrink to the *effective*
    /// taps per output pixel (`R / stride`, at least 1) — this keeps the
    /// product of all iteration extents equal to the layer's MAC count.
    pub fn extent(&self, layer: &Layer) -> u32 {
        let d = layer.dims();
        let upconv = layer.op() == herald_models::LayerOp::TransposedConv;
        match self {
            Dim::K => d.k,
            Dim::C => d.c,
            Dim::Y => layer.out_y(),
            Dim::X => layer.out_x(),
            Dim::R if upconv => (d.r / d.stride).max(1),
            Dim::R => d.r,
            Dim::S if upconv => (d.s / d.stride).max(1),
            Dim::S => d.s,
        }
    }

    /// The dimensions a layer actually iterates over: all six, except that
    /// depth-wise convolution has a single channel loop (its `K` and `C`
    /// name the same dimension, so `C` is omitted).
    pub fn iteration_dims(layer: &Layer) -> &'static [Dim] {
        if layer.op() == herald_models::LayerOp::DepthwiseConv {
            &[Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S]
        } else {
            &Dim::ALL
        }
    }

    /// Lower-case loop-variable name used in rendered loop nests.
    pub fn var(&self) -> &'static str {
        match self {
            Dim::K => "k",
            Dim::C => "c",
            Dim::Y => "y",
            Dim::X => "x",
            Dim::R => "r",
            Dim::S => "s",
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_models::{LayerDims, LayerOp};

    #[test]
    fn extents_use_output_spatial_sizes() {
        let layer = Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(16, 8, 10, 10, 3, 3)
                .with_stride(2)
                .with_pad(1),
        );
        assert_eq!(Dim::K.extent(&layer), 16);
        assert_eq!(Dim::C.extent(&layer), 8);
        assert_eq!(Dim::Y.extent(&layer), 5);
        assert_eq!(Dim::X.extent(&layer), 5);
        assert_eq!(Dim::R.extent(&layer), 3);
    }

    #[test]
    fn upconv_extent_uses_upscaled_output() {
        let layer = Layer::new(
            "up",
            LayerOp::TransposedConv,
            LayerDims::conv(8, 16, 14, 14, 2, 2).with_stride(2),
        );
        assert_eq!(Dim::Y.extent(&layer), 28);
    }

    #[test]
    fn all_lists_every_dim_once() {
        let mut sorted = Dim::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn var_names_are_lowercase_dims() {
        assert_eq!(Dim::K.var(), "k");
        assert_eq!(Dim::S.var(), "s");
    }
}
