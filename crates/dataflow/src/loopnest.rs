//! Loop-nest rendering of dataflows, in the style of the paper's Fig. 4.

use crate::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a loop level executes sequentially or is unrolled across PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// Sequential loop (`for` in Fig. 4).
    Temporal,
    /// Spatially unrolled loop (`pfor` in Fig. 4).
    Spatial,
}

/// One level of a loop nest: a dimension iterated with a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Loop {
    dim: Dim,
    bound: u32,
    kind: LoopKind,
}

impl Loop {
    /// Creates a loop level.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(dim: Dim, bound: u32, kind: LoopKind) -> Self {
        assert!(bound > 0, "loop bound must be positive");
        Self { dim, bound, kind }
    }

    /// The iterated dimension.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The loop bound.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Temporal or spatial.
    pub fn kind(&self) -> LoopKind {
        self.kind
    }
}

/// An ordered loop nest, outermost level first.
///
/// # Example
///
/// ```
/// use herald_dataflow::{Dim, Loop, LoopKind, LoopNest};
///
/// let nest = LoopNest::new(vec![
///     Loop::new(Dim::K, 4, LoopKind::Temporal),
///     Loop::new(Dim::C, 64, LoopKind::Spatial),
/// ]);
/// assert_eq!(nest.iteration_count(), 256);
/// let text = nest.to_string();
/// assert!(text.contains("pfor(c0=0; c0<64; c0++)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNest {
    loops: Vec<Loop>,
}

impl LoopNest {
    /// Creates a loop nest from levels ordered outermost-first.
    pub fn new(loops: Vec<Loop>) -> Self {
        Self { loops }
    }

    /// The loop levels, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Total number of innermost iterations: the product of all bounds.
    pub fn iteration_count(&self) -> u64 {
        self.loops.iter().map(|l| u64::from(l.bound)).product()
    }

    /// Number of spatially unrolled lanes: the product of spatial bounds.
    pub fn spatial_lanes(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.kind == LoopKind::Spatial)
            .map(|l| u64::from(l.bound))
            .product()
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Count occurrences per dim so repeated levels get distinct
        // variable suffixes (k1, k0 ... as in Fig. 4).
        let mut remaining: std::collections::HashMap<Dim, u32> = std::collections::HashMap::new();
        for l in &self.loops {
            *remaining.entry(l.dim).or_insert(0) += 1;
        }
        for (depth, l) in self.loops.iter().enumerate() {
            let level = {
                let r = remaining.get_mut(&l.dim).expect("counted above");
                *r -= 1;
                *r
            };
            let var = format!("{}{}", l.dim.var(), level);
            let keyword = match l.kind {
                LoopKind::Temporal => "for",
                LoopKind::Spatial => "pfor",
            };
            writeln!(
                f,
                "{:indent$}{keyword}({var}=0; {var}<{bound}; {var}++)",
                "",
                indent = depth,
                bound = l.bound,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nest() -> LoopNest {
        LoopNest::new(vec![
            Loop::new(Dim::K, 4, LoopKind::Temporal),
            Loop::new(Dim::K, 16, LoopKind::Spatial),
            Loop::new(Dim::C, 64, LoopKind::Spatial),
            Loop::new(Dim::Y, 56, LoopKind::Temporal),
        ])
    }

    #[test]
    fn iteration_count_is_bound_product() {
        assert_eq!(nest().iteration_count(), 4 * 16 * 64 * 56);
    }

    #[test]
    fn spatial_lanes_counts_pfors_only() {
        assert_eq!(nest().spatial_lanes(), 16 * 64);
    }

    #[test]
    fn display_disambiguates_repeated_dims() {
        let text = nest().to_string();
        assert!(text.contains("for(k1=0; k1<4; k1++)"), "{text}");
        assert!(text.contains("pfor(k0=0; k0<16; k0++)"), "{text}");
    }

    #[test]
    fn display_indents_by_depth() {
        let text = nest().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with(' '));
        assert!(lines[3].starts_with("   "));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let _ = Loop::new(Dim::K, 0, LoopKind::Temporal);
    }

    #[test]
    fn empty_nest_has_single_iteration() {
        let n = LoopNest::new(vec![]);
        assert_eq!(n.iteration_count(), 1);
        assert_eq!(n.spatial_lanes(), 1);
    }
}
