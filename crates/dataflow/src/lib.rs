//! Loop-nest dataflow and mapping representation for the Herald HDA
//! framework.
//!
//! Terminology follows the paper (Sec. II-B):
//!
//! * A **dataflow** is a loop ordering plus a spatial-unrolling
//!   (parallelization) strategy — *how* a DNN layer is computed, with loop
//!   bounds left unfilled. The three evaluated styles are
//!   [`DataflowStyle::Nvdla`] (weight-stationary, channel-parallel),
//!   [`DataflowStyle::ShiDianNao`] (output-stationary, spatially parallel)
//!   and [`DataflowStyle::Eyeriss`] (row-stationary).
//! * A **mapping** is a dataflow instance with concrete loop bounds for one
//!   layer on one accelerator: spatial unroll factors, PE utilization and
//!   tile shapes. [`MappingBuilder`] searches the legal bound space for the
//!   best factors a style allows on a given layer, reproducing the
//!   per-layer dataflow preferences of the paper's Fig. 5.
//!
//! # Example
//!
//! ```
//! use herald_dataflow::{DataflowStyle, MappingBuilder};
//! use herald_models::{Layer, LayerDims, LayerOp};
//!
//! // A late classification layer: deep channels, tiny spatial extent.
//! let layer = Layer::new(
//!     "late",
//!     LayerOp::Conv2d,
//!     LayerDims::conv(512, 512, 7, 7, 3, 3).with_pad(1),
//! );
//! let nvdla = MappingBuilder::new(DataflowStyle::Nvdla, 256).best(&layer);
//! let shi = MappingBuilder::new(DataflowStyle::ShiDianNao, 256).best(&layer);
//! // Channel parallelism saturates all 256 PEs; output-pixel parallelism
//! // can only use 7x7 = 49.
//! assert_eq!(nvdla.active_pes(), 256);
//! assert_eq!(shi.active_pes(), 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dims;
mod loopnest;
mod mapping;
mod style;
mod validate;

pub use dims::Dim;
pub use loopnest::{Loop, LoopKind, LoopNest};
pub use mapping::{Mapping, MappingBuilder};
pub use style::DataflowStyle;
pub use validate::{validate_mapping, MappingError};
