//! Mapping legality checks.

use crate::{Dim, Mapping};
use herald_models::Layer;
use std::error::Error;
use std::fmt;

/// A mapping legality violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A spatial factor was zero.
    ZeroFactor(Dim),
    /// A spatial factor exceeded the layer's dimension extent.
    FactorExceedsExtent {
        /// Offending dimension.
        dim: Dim,
        /// The factor requested.
        factor: u32,
        /// The layer's extent for the dimension.
        extent: u32,
    },
    /// The product of spatial factors exceeded the allocated PE count.
    TooManyActivePes {
        /// Product of the spatial factors.
        active: u64,
        /// Allocated PEs.
        alloc: u32,
    },
    /// A dimension appeared twice in the spatial unroll list.
    DuplicateDim(Dim),
    /// The mapping spatially accumulates across input channels for an
    /// operator with no cross-channel reduction (depth-wise convolution).
    IllegalChannelAccumulation,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ZeroFactor(d) => write!(f, "spatial factor for {d} is zero"),
            MappingError::FactorExceedsExtent {
                dim,
                factor,
                extent,
            } => write!(
                f,
                "spatial factor {factor} for {dim} exceeds layer extent {extent}"
            ),
            MappingError::TooManyActivePes { active, alloc } => {
                write!(f, "{active} active PEs exceed the {alloc} allocated")
            }
            MappingError::DuplicateDim(d) => write!(f, "dimension {d} unrolled twice"),
            MappingError::IllegalChannelAccumulation => write!(
                f,
                "spatial input-channel accumulation is illegal for depth-wise convolution"
            ),
        }
    }
}

impl Error for MappingError {}

/// Checks that a mapping is legal for a layer: positive factors within the
/// dimension extents, no duplicate dimensions, the active-PE product within
/// the allocation, and no spatial channel accumulation on depth-wise
/// layers.
///
/// Mappings produced by [`crate::MappingBuilder`] are legal by
/// construction; this function exists for externally constructed or
/// deserialized mappings and as the oracle for property tests.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_mapping(mapping: &Mapping, layer: &Layer) -> Result<(), MappingError> {
    let mut seen = Vec::new();
    let mut active: u64 = 1;
    for &(dim, factor) in mapping.spatial() {
        if factor == 0 {
            return Err(MappingError::ZeroFactor(dim));
        }
        if seen.contains(&dim) {
            return Err(MappingError::DuplicateDim(dim));
        }
        seen.push(dim);
        let extent = dim.extent(layer);
        if factor > extent {
            return Err(MappingError::FactorExceedsExtent {
                dim,
                factor,
                extent,
            });
        }
        active *= u64::from(factor);
    }
    if active > u64::from(mapping.alloc_pes()) {
        return Err(MappingError::TooManyActivePes {
            active,
            alloc: mapping.alloc_pes(),
        });
    }
    if !layer.op().accumulates_across_channels() && mapping.factor(Dim::C) > 1 {
        return Err(MappingError::IllegalChannelAccumulation);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataflowStyle, MappingBuilder};
    use herald_models::{LayerDims, LayerOp};

    fn layer() -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(64, 32, 28, 28, 3, 3).with_pad(1),
        )
    }

    #[test]
    fn builder_mappings_are_legal() {
        for style in DataflowStyle::ALL {
            for pes in [1u32, 64, 500, 4096] {
                let m = MappingBuilder::new(style, pes).best(&layer());
                assert_eq!(validate_mapping(&m, &layer()), Ok(()), "{style} {pes}");
            }
        }
    }

    #[test]
    fn depthwise_mappings_are_legal_for_all_styles() {
        let dw = Layer::new(
            "dw",
            LayerOp::DepthwiseConv,
            LayerDims::conv(64, 64, 28, 28, 3, 3).with_pad(1),
        );
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, 1024).best(&dw);
            assert_eq!(validate_mapping(&m, &dw), Ok(()), "{style}");
        }
    }

    #[test]
    fn errors_are_displayable() {
        let e = MappingError::FactorExceedsExtent {
            dim: Dim::C,
            factor: 64,
            extent: 32,
        };
        assert!(e.to_string().contains("exceeds"));
        assert!(MappingError::ZeroFactor(Dim::K)
            .to_string()
            .contains("zero"));
        assert!(MappingError::IllegalChannelAccumulation
            .to_string()
            .contains("depth-wise"));
    }
}
