//! Concrete mappings: a dataflow style instantiated for one layer on one
//! PE array.

use crate::{DataflowStyle, Dim, LoopKind, LoopNest};
use herald_models::{Layer, LayerOp};
use serde::{Deserialize, Serialize};

/// NVDLA organises its MAC array as `ATOMIC_C`-wide input-channel lanes
/// (spatially accumulated by an adder tree) replicated across output-channel
/// cells. 64 is the NVDLA reference configuration.
const NVDLA_ATOMIC_C: u32 = 64;

/// Eyeriss organises its array as a fixed number of PE rows onto which
/// filter rows (and folded channel groups) are mapped; columns carry output
/// rows. 16 generalises the 12-row Eyeriss chip to power-of-two arrays.
const EYERISS_ROWS: u32 = 16;

/// A concrete mapping: the spatial unroll factors a [`DataflowStyle`]
/// achieves for one layer on a PE array of a given size.
///
/// The factors are always clipped to the layer's dimension extents, so
/// [`Mapping::active_pes`] divided by the allocated PE count is exactly the
/// paper's *mapping utilization of compute units* (Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    style: DataflowStyle,
    alloc_pes: u32,
    spatial: Vec<(Dim, u32)>,
}

impl Mapping {
    /// The dataflow style this mapping instantiates.
    pub fn style(&self) -> DataflowStyle {
        self.style
    }

    /// PEs allocated to the (sub-)accelerator running this mapping.
    pub fn alloc_pes(&self) -> u32 {
        self.alloc_pes
    }

    /// The spatial unroll factors, `(dimension, factor)`, outermost first.
    /// Factors are clipped to the layer's extents and their product never
    /// exceeds [`Mapping::alloc_pes`].
    pub fn spatial(&self) -> &[(Dim, u32)] {
        &self.spatial
    }

    /// The unroll factor for a dimension (1 if the dimension is not
    /// spatially mapped).
    pub fn factor(&self, dim: Dim) -> u32 {
        self.spatial
            .iter()
            .find(|(d, _)| *d == dim)
            .map_or(1, |&(_, f)| f)
    }

    /// Number of PEs that actually receive work in a steady-state tile.
    pub fn active_pes(&self) -> u32 {
        self.spatial.iter().map(|&(_, f)| f).product()
    }

    /// Mapping utilization of compute units: active / allocated PEs.
    pub fn utilization(&self) -> f64 {
        f64::from(self.active_pes()) / f64::from(self.alloc_pes)
    }

    /// Number of sequential spatial steps needed to cover the layer:
    /// the product of `ceil(extent / factor)` over spatially mapped dims.
    /// Edge tiles are counted as full steps, exactly as a rigid loop nest
    /// executes them.
    pub fn spatial_steps(&self, layer: &Layer) -> u64 {
        self.spatial
            .iter()
            .map(|&(d, f)| u64::from(d.extent(layer).div_ceil(f)))
            .product()
    }

    /// Compute cycles for the layer under this mapping, assuming one MAC
    /// per PE per cycle: the product of the unmapped dimensions' iteration
    /// extents (temporal loops) times the number of spatial steps. Edge
    /// tiles count as full steps, exactly as a rigid loop nest executes
    /// them, so this is always at least `macs / active_pes`.
    pub fn compute_cycles(&self, layer: &Layer) -> u64 {
        let temporal_iters: u64 = Dim::iteration_dims(layer)
            .iter()
            .filter(|d| !self.spatial.iter().any(|&(sd, _)| sd == **d))
            .map(|d| u64::from(d.extent(layer)))
            .product();
        temporal_iters * self.spatial_steps(layer)
    }

    /// Renders this mapping as a tiled loop nest in the style of the
    /// paper's Fig. 4: an outer temporal loop per tiled spatial dimension,
    /// `pfor` loops for the unrolls, then the remaining dimensions as inner
    /// temporal loops.
    pub fn loop_nest(&self, layer: &Layer) -> LoopNest {
        let mut loops = Vec::new();
        // Outer temporal tile loops for the spatially mapped dims.
        for &(d, f) in &self.spatial {
            let steps = d.extent(layer).div_ceil(f);
            if steps > 1 {
                loops.push(crate::Loop::new(d, steps, LoopKind::Temporal));
            }
        }
        // Spatial (pfor) loops.
        for &(d, f) in &self.spatial {
            loops.push(crate::Loop::new(d, f, LoopKind::Spatial));
        }
        // Inner temporal loops over the dims not spatially mapped, in
        // canonical order.
        for &d in Dim::iteration_dims(layer) {
            if !self.spatial.iter().any(|&(sd, _)| sd == d) {
                let extent = d.extent(layer);
                if extent > 1 {
                    loops.push(crate::Loop::new(d, extent, LoopKind::Temporal));
                }
            }
        }
        LoopNest::new(loops)
    }
}

/// Constructs the canonical [`Mapping`] of a [`DataflowStyle`] for a layer
/// on an array of `pe_count` PEs.
///
/// The builder encodes the *fixed geometry* of each accelerator style —
/// what makes a fixed-dataflow accelerator fixed:
///
/// * **NVDLA**: `min(64, PEs)` input-channel lanes (the adder-tree width) x
///   `PEs / lanes` output-channel cells. Layers with fewer than 64 input
///   channels strand lanes; depth-wise layers (no cross-channel
///   accumulation) can use only a single lane.
/// * **Shi-diannao**: a near-square `py x px` grid over output pixels.
///   Layers with small output activations strand most of the grid.
/// * **Eyeriss**: 16 PE rows carrying filter rows (folding channel groups
///   into leftover rows, as the Eyeriss chip does for small filters) and
///   `PEs / 16` columns carrying output rows.
///
/// # Example
///
/// ```
/// use herald_dataflow::{DataflowStyle, MappingBuilder};
/// use herald_models::{Layer, LayerDims, LayerOp};
///
/// // Depth-wise layer: NVDLA's adder tree is useless, Shi-diannao thrives.
/// let dw = Layer::new(
///     "dw",
///     LayerOp::DepthwiseConv,
///     LayerDims::conv(96, 96, 56, 56, 3, 3).with_pad(1),
/// );
/// let nvdla = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&dw);
/// let shi = MappingBuilder::new(DataflowStyle::ShiDianNao, 1024).best(&dw);
/// assert!(nvdla.utilization() < 0.05);
/// assert!(shi.utilization() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingBuilder {
    style: DataflowStyle,
    pe_count: u32,
}

impl MappingBuilder {
    /// Creates a mapper for `style` on an array of `pe_count` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `pe_count` is zero.
    pub fn new(style: DataflowStyle, pe_count: u32) -> Self {
        assert!(pe_count > 0, "PE count must be positive");
        Self { style, pe_count }
    }

    /// The style this mapper instantiates.
    pub fn style(&self) -> DataflowStyle {
        self.style
    }

    /// The PE array size.
    pub fn pe_count(&self) -> u32 {
        self.pe_count
    }

    /// Builds the canonical mapping of the style for `layer`.
    pub fn best(&self, layer: &Layer) -> Mapping {
        let spatial = match self.style {
            DataflowStyle::Nvdla => self.nvdla_factors(layer),
            DataflowStyle::ShiDianNao => self.shi_factors(layer),
            DataflowStyle::Eyeriss => self.eyeriss_factors(layer),
        };
        let mapping = Mapping {
            style: self.style,
            alloc_pes: self.pe_count,
            spatial,
        };
        debug_assert!(crate::validate_mapping(&mapping, layer).is_ok());
        mapping
    }

    fn nvdla_factors(&self, layer: &Layer) -> Vec<(Dim, u32)> {
        let lanes = NVDLA_ATOMIC_C.min(self.pe_count);
        let cells = (self.pe_count / lanes).max(1);
        // The adder tree spatially accumulates across input channels, which
        // depth-wise convolution cannot exploit: only one lane is usable.
        let usable_c = if layer.op().accumulates_across_channels() {
            layer.dims().c
        } else {
            1
        };
        let fc = usable_c.min(lanes);
        let fk = layer.dims().k.min(cells);
        vec![(Dim::C, fc), (Dim::K, fk)]
    }

    fn shi_factors(&self, layer: &Layer) -> Vec<(Dim, u32)> {
        let py_geom = (f64::from(self.pe_count).sqrt().floor() as u32).max(1);
        let px_geom = (self.pe_count / py_geom).max(1);
        let fy = Dim::Y.extent(layer).min(py_geom);
        let fx = Dim::X.extent(layer).min(px_geom);
        vec![(Dim::Y, fy), (Dim::X, fx)]
    }

    fn eyeriss_factors(&self, layer: &Layer) -> Vec<(Dim, u32)> {
        let rows = EYERISS_ROWS.min(self.pe_count);
        let cols = (self.pe_count / rows).max(1);
        let fr = Dim::R.extent(layer).min(rows);
        // Leftover rows fold extra channel groups (filter planes of other
        // input channels; output channels for depth-wise layers, which have
        // no channel reduction to fold).
        let fold_dim = if layer.op() == LayerOp::DepthwiseConv {
            Dim::K
        } else {
            Dim::C
        };
        let fold = fold_dim.extent(layer).min((rows / fr).max(1));
        let fy = Dim::Y.extent(layer).min(cols);
        vec![(Dim::R, fr), (fold_dim, fold), (Dim::Y, fy)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_models::LayerDims;

    fn conv(k: u32, c: u32, y: u32, r: u32) -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(k, c, y, y, r, r).with_pad(r / 2),
        )
    }

    #[test]
    fn nvdla_saturates_on_deep_channels() {
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&conv(512, 512, 7, 3));
        assert_eq!(m.active_pes(), 1024);
        assert_eq!(m.utilization(), 1.0);
    }

    #[test]
    fn nvdla_starves_on_shallow_channels() {
        // First layer: C = 3 uses 3 of 64 lanes.
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&conv(64, 3, 224, 7));
        assert_eq!(m.factor(Dim::C), 3);
        assert!(m.utilization() < 0.05);
    }

    #[test]
    fn shi_saturates_on_large_activations() {
        let m = MappingBuilder::new(DataflowStyle::ShiDianNao, 1024).best(&conv(64, 3, 224, 7));
        assert_eq!(m.active_pes(), 1024);
    }

    #[test]
    fn shi_starves_on_small_activations() {
        let m = MappingBuilder::new(DataflowStyle::ShiDianNao, 1024).best(&conv(512, 512, 7, 3));
        assert_eq!(m.active_pes(), 49);
        assert!(m.utilization() < 0.05);
    }

    #[test]
    fn eyeriss_is_midway_on_both_extremes() {
        let early = MappingBuilder::new(DataflowStyle::Eyeriss, 1024).best(&conv(64, 3, 224, 7));
        let late = MappingBuilder::new(DataflowStyle::Eyeriss, 1024).best(&conv(512, 512, 7, 3));
        assert!(early.utilization() > 0.5, "early {}", early.utilization());
        assert!(late.utilization() > 0.05, "late {}", late.utilization());
        assert!(late.utilization() < 0.5, "late {}", late.utilization());
    }

    #[test]
    fn depthwise_kills_nvdla_lanes() {
        let dw = Layer::new(
            "dw",
            LayerOp::DepthwiseConv,
            LayerDims::conv(96, 96, 56, 56, 3, 3).with_pad(1),
        );
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&dw);
        assert_eq!(m.factor(Dim::C), 1);
        assert_eq!(m.factor(Dim::K), 16);
    }

    #[test]
    fn compute_cycles_exact_for_perfect_fit() {
        // 64x64 conv on a 64-lane NVDLA: C fully unrolled, K over 16 cells.
        let layer = conv(64, 64, 8, 3);
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&layer);
        // fc = 64, fk = 16 -> 4 K-steps; temporal = Y'X'RS = 8*8*9.
        assert_eq!(m.compute_cycles(&layer), 4 * 8 * 8 * 9);
    }

    #[test]
    fn compute_cycles_counts_edge_tiles_fully() {
        // Y' = 10 on an 8-wide grid -> 2 steps even though the second is
        // only a quarter full.
        let layer = conv(1, 1, 10, 1);
        let m = Mapping {
            style: DataflowStyle::ShiDianNao,
            alloc_pes: 64,
            spatial: vec![(Dim::Y, 8), (Dim::X, 8)],
        };
        assert_eq!(m.spatial_steps(&layer), 4);
        assert_eq!(m.compute_cycles(&layer), 4);
    }

    #[test]
    fn tiny_pe_arrays_degenerate_gracefully() {
        let layer = conv(16, 16, 16, 3);
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, 1).best(&layer);
            assert_eq!(m.active_pes(), 1, "{style}");
            assert_eq!(m.compute_cycles(&layer), layer.macs(), "{style}");
        }
    }

    #[test]
    fn active_pes_never_exceed_allocation() {
        let layers = [
            conv(64, 3, 224, 7),
            conv(2048, 512, 7, 1),
            conv(16, 16, 4, 3),
        ];
        for layer in &layers {
            for style in DataflowStyle::ALL {
                for pes in [1u32, 7, 64, 100, 1024, 16384] {
                    let m = MappingBuilder::new(style, pes).best(layer);
                    assert!(m.active_pes() <= pes, "{style} {pes} -> {}", m.active_pes());
                }
            }
        }
    }

    #[test]
    fn loop_nest_covers_all_macs() {
        let layer = conv(32, 16, 14, 3);
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, 256).best(&layer);
            let nest = m.loop_nest(&layer);
            // The product of all loop bounds must be >= total MACs (edge
            // tiles may overcount, never undercount).
            assert!(nest.iteration_count() >= layer.macs(), "{style}");
        }
    }

    #[test]
    fn fc_layers_prefer_nvdla_by_orders_of_magnitude() {
        let fc = Layer::new("fc", LayerOp::Fc, LayerDims::fc(1000, 2048));
        let nvdla = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&fc);
        let shi = MappingBuilder::new(DataflowStyle::ShiDianNao, 1024).best(&fc);
        assert!(nvdla.active_pes() >= 64 * shi.active_pes());
    }
}
