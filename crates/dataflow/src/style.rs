//! The dataflow styles evaluated by the paper.

use crate::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dataflow style: the loop-ordering / spatial-unrolling strategy of a
/// published accelerator (paper Table III).
///
/// Each style fixes *which* dimensions are parallelized across PEs and
/// *which* operand stays stationary in the PE register file; the concrete
/// unroll factors are chosen per layer by [`crate::MappingBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataflowStyle {
    /// NVDLA-style: weight-stationary, parallelises input and output
    /// channels (`pfor k0`, `pfor c0` in Fig. 4a) with a spatial adder tree
    /// accumulating partial sums across input channels. Excels on
    /// deep-channel CONV2D and FC; starves on shallow-channel and
    /// depth-wise layers.
    Nvdla,
    /// Shi-diannao-style: output-stationary, parallelises output rows and
    /// columns (`pfor y0`, `pfor x0` in Fig. 4b) with temporal partial-sum
    /// accumulation inside each PE. Excels on large-activation
    /// shallow-channel layers (segmentation encoders, depth-wise convs).
    ShiDianNao,
    /// Eyeriss-style: row-stationary, parallelises output rows and filter
    /// rows (1-D convolution primitives per PE) and folds surplus PEs over
    /// output channels. A middle ground between the two extremes.
    Eyeriss,
}

impl DataflowStyle {
    /// The three styles evaluated in the paper, in Table III order.
    pub const ALL: [DataflowStyle; 3] = [
        DataflowStyle::Nvdla,
        DataflowStyle::ShiDianNao,
        DataflowStyle::Eyeriss,
    ];

    /// The dimensions this style unrolls spatially across PEs, outermost
    /// first.
    pub fn parallel_dims(&self) -> &'static [Dim] {
        match self {
            DataflowStyle::Nvdla => &[Dim::K, Dim::C],
            DataflowStyle::ShiDianNao => &[Dim::Y, Dim::X],
            DataflowStyle::Eyeriss => &[Dim::Y, Dim::R, Dim::K],
        }
    }

    /// Whether the style performs *spatial* accumulation of partial sums
    /// across input channels (an adder tree, as in NVDLA). Spatial
    /// accumulation is unusable for operators that do not reduce across
    /// channels (depth-wise convolution), which is exactly why such layers
    /// starve channel-parallel dataflows.
    pub fn spatial_channel_accumulation(&self) -> bool {
        matches!(self, DataflowStyle::Nvdla)
    }

    /// Which operand stays stationary in each PE's register file.
    pub fn stationary(&self) -> Stationary {
        match self {
            DataflowStyle::Nvdla => Stationary::Weight,
            DataflowStyle::ShiDianNao => Stationary::Output,
            DataflowStyle::Eyeriss => Stationary::Row,
        }
    }

    /// Short human-readable name used in reports and plots.
    pub fn label(&self) -> &'static str {
        match self {
            DataflowStyle::Nvdla => "NVDLA",
            DataflowStyle::ShiDianNao => "Shi-diannao",
            DataflowStyle::Eyeriss => "Eyeriss",
        }
    }
}

impl fmt::Display for DataflowStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The operand a dataflow style keeps stationary in PE register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stationary {
    /// Filter weights resident per PE (NVDLA).
    Weight,
    /// Output partial sums resident per PE (Shi-diannao).
    Output,
    /// 1-D row primitives resident per PE (Eyeriss).
    Row,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_dims_are_distinct_across_styles() {
        // The paper picks these styles *because* their parallel dims differ;
        // NVDLA and Shi-diannao must share no parallel dimension.
        let nvdla = DataflowStyle::Nvdla.parallel_dims();
        let shi = DataflowStyle::ShiDianNao.parallel_dims();
        assert!(nvdla.iter().all(|d| !shi.contains(d)));
    }

    #[test]
    fn only_nvdla_accumulates_spatially() {
        assert!(DataflowStyle::Nvdla.spatial_channel_accumulation());
        assert!(!DataflowStyle::ShiDianNao.spatial_channel_accumulation());
        assert!(!DataflowStyle::Eyeriss.spatial_channel_accumulation());
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(DataflowStyle::Nvdla.to_string(), "NVDLA");
        assert_eq!(DataflowStyle::ShiDianNao.to_string(), "Shi-diannao");
        assert_eq!(DataflowStyle::Eyeriss.to_string(), "Eyeriss");
    }

    #[test]
    fn all_contains_three_unique_styles() {
        let mut v = DataflowStyle::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn stationary_operands() {
        assert_eq!(DataflowStyle::Nvdla.stationary(), Stationary::Weight);
        assert_eq!(DataflowStyle::ShiDianNao.stationary(), Stationary::Output);
        assert_eq!(DataflowStyle::Eyeriss.stationary(), Stationary::Row);
    }
}
