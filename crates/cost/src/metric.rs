//! Optimization metrics selectable throughout Herald.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar objective used to rank design points and layer assignments.
///
/// The paper's scheduler and DSE let the user select the metric
/// (Sec. IV-D: "users can select the metric (e.g., EDP, energy, latency,
/// and so on)"); EDP is the default everywhere, as in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Energy-delay product (J x s) — the paper's headline metric.
    #[default]
    Edp,
    /// Total latency (seconds).
    Latency,
    /// Total energy (joules).
    Energy,
}

impl Metric {
    /// All metrics.
    pub const ALL: [Metric; 3] = [Metric::Edp, Metric::Latency, Metric::Energy];

    /// Extracts this metric from a `(latency_s, energy_j)` pair.
    pub fn score(&self, latency_s: f64, energy_j: f64) -> f64 {
        match self {
            Metric::Edp => latency_s * energy_j,
            Metric::Latency => latency_s,
            Metric::Energy => energy_j,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Edp => f.write_str("EDP"),
            Metric::Latency => f.write_str("latency"),
            Metric::Energy => f.write_str("energy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_multiplies() {
        assert_eq!(Metric::Edp.score(2.0, 3.0), 6.0);
    }

    #[test]
    fn latency_and_energy_project() {
        assert_eq!(Metric::Latency.score(2.0, 3.0), 2.0);
        assert_eq!(Metric::Energy.score(2.0, 3.0), 3.0);
    }

    #[test]
    fn default_is_edp() {
        assert_eq!(Metric::default(), Metric::Edp);
    }
}
