//! MAESTRO-style analytical latency/energy cost model for DNN accelerators.
//!
//! This crate rebuilds, from scratch, the cost-model substrate the paper
//! uses (MAESTRO, extended by Herald for multi-sub-accelerator designs).
//! For a layer, a [`herald_dataflow::Mapping`] and a bandwidth allocation it
//! derives:
//!
//! * **Compute cycles** from the mapping's spatial unrolls (including edge
//!   tiles and PE under-utilization — the paper's Fig. 5 effect),
//! * **Global-buffer traffic** per operand from each dataflow style's reuse
//!   structure ([`TrafficCounts`]),
//! * **Latency** as the steady-state maximum of compute and the
//!   bandwidth-throttled global traffic (double-buffered execution,
//!   Sec. IV-A),
//! * **Energy** from an energy-per-action table ([`EnergyModel`]) with the
//!   standard RF / NoC / global-buffer / DRAM hierarchy,
//! * **Buffer requirements** for the scheduler's memory constraint.
//!
//! The entry point is [`CostModel`]; results are [`LayerCost`] values and
//! queries are memoized internally (schedulers and DSE issue millions of
//! repeated queries).
//!
//! # Example
//!
//! ```
//! use herald_cost::CostModel;
//! use herald_dataflow::DataflowStyle;
//! use herald_models::{Layer, LayerDims, LayerOp};
//!
//! let model = CostModel::default();
//! // An early, shallow-channel layer prefers Shi-diannao over NVDLA.
//! let layer = Layer::new(
//!     "early",
//!     LayerOp::Conv2d,
//!     LayerDims::conv(64, 3, 112, 112, 3, 3).with_pad(1),
//! );
//! let nvdla = model.evaluate(&layer, DataflowStyle::Nvdla, 256, 32.0);
//! let shi = model.evaluate(&layer, DataflowStyle::ShiDianNao, 256, 32.0);
//! assert!(shi.edp() < nvdla.edp());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod energy;
mod latency;
mod metric;
mod model;
mod traffic;

pub use buffer::BufferRequirement;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use metric::Metric;
pub use model::{CostModel, CostModelConfig, CostQuery, LayerCost};
pub use traffic::TrafficCounts;
