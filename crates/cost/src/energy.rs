//! Energy-per-action table and energy accounting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-action energy table (picojoules), playing the role of the paper's
/// 28 nm CAD characterization.
///
/// Default values follow the widely used Eyeriss/MAESTRO relative energy
/// hierarchy, normalized to a 1 pJ MAC: register-file accesses cost about
/// as much as a MAC, an on-chip NoC traversal twice as much, a
/// multi-mebibyte global scratchpad twelve times (large SRAM arrays cost
/// more per access than Eyeriss's 108 KB buffer), and LPDDR-class DRAM
/// four hundred times. Only the *ratios* influence any conclusion
/// reproduced from the paper; absolute joules are a substitution
/// documented in `DESIGN.md`.
///
/// # Example
///
/// ```
/// use herald_cost::EnergyModel;
///
/// let e = EnergyModel::default();
/// assert!(e.dram_pj > 10.0 * e.gb_pj);
/// assert!(e.gb_pj > e.noc_pj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One multiply-accumulate operation.
    pub mac_pj: f64,
    /// One register-file (PE-local) access.
    pub rf_pj: f64,
    /// One word injected on the intra-accelerator NoC.
    pub noc_pj: f64,
    /// One word read from / written to the shared global buffer.
    pub gb_pj: f64,
    /// One word read from / written to DRAM.
    pub dram_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            mac_pj: 1.0,
            rf_pj: 0.96,
            noc_pj: 2.0,
            gb_pj: 12.0,
            dram_pj: 400.0,
        }
    }
}

impl EnergyModel {
    /// Effective energy of one MAC including its register-file activity
    /// (two operand reads plus one accumulator update) — identical across
    /// dataflow styles, so style differences come entirely from the memory
    /// hierarchy, as in MAESTRO.
    pub fn mac_with_rf_pj(&self) -> f64 {
        self.mac_pj + 3.0 * self.rf_pj
    }
}

/// Energy totals per hierarchy level for one layer execution, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC + register-file energy.
    pub compute_j: f64,
    /// Intra-accelerator NoC delivery energy.
    pub noc_j: f64,
    /// Global-buffer access energy.
    pub gb_j: f64,
    /// DRAM access energy.
    pub dram_j: f64,
    /// Reconfiguration overhead energy (zero except on RDAs).
    pub reconfig_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.noc_j + self.gb_j + self.dram_j + self.reconfig_j
    }

    /// Element-wise sum of two breakdowns.
    #[must_use]
    pub fn plus(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: self.compute_j + other.compute_j,
            noc_j: self.noc_j + other.noc_j,
            gb_j: self.gb_j + other.gb_j,
            dram_j: self.dram_j + other.dram_j,
            reconfig_j: self.reconfig_j + other.reconfig_j,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.3e} J (compute {:.3e}, noc {:.3e}, gb {:.3e}, dram {:.3e}, reconfig {:.3e})",
            self.total_j(),
            self.compute_j,
            self.noc_j,
            self.gb_j,
            self.dram_j,
            self.reconfig_j
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hierarchy_ordering() {
        let e = EnergyModel::default();
        assert!(e.rf_pj < e.noc_pj);
        assert!(e.noc_pj < e.gb_pj);
        assert!(e.gb_pj < e.dram_pj);
    }

    #[test]
    fn mac_with_rf_includes_three_accesses() {
        let e = EnergyModel {
            mac_pj: 1.0,
            rf_pj: 1.0,
            noc_pj: 0.0,
            gb_pj: 0.0,
            dram_pj: 0.0,
        };
        assert_eq!(e.mac_with_rf_pj(), 4.0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = EnergyBreakdown {
            compute_j: 1.0,
            noc_j: 2.0,
            gb_j: 3.0,
            dram_j: 4.0,
            reconfig_j: 5.0,
        };
        assert_eq!(b.total_j(), 15.0);
    }

    #[test]
    fn plus_is_elementwise() {
        let a = EnergyBreakdown {
            compute_j: 1.0,
            ..Default::default()
        };
        let b = EnergyBreakdown {
            dram_j: 2.0,
            ..Default::default()
        };
        let c = a.plus(&b);
        assert_eq!(c.compute_j, 1.0);
        assert_eq!(c.dram_j, 2.0);
        assert_eq!(c.total_j(), 3.0);
    }

    #[test]
    fn display_mentions_total() {
        let b = EnergyBreakdown::default();
        assert!(b.to_string().contains("total"));
    }
}
