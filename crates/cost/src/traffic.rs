//! Per-dataflow-style data-movement analysis.
//!
//! Each dataflow style induces a different reuse structure, which determines
//! how many words cross each boundary of the memory hierarchy. This module
//! derives, per layer execution:
//!
//! * `gb_*` — words crossing the global-buffer <-> sub-accelerator boundary
//!   (the paper's partitioned *global NoC*; this traffic is throttled by the
//!   sub-accelerator's bandwidth allocation and charged global-buffer
//!   energy),
//! * `local_noc_words` — operand deliveries inside the sub-accelerator
//!   (charged NoC energy; never bandwidth-throttled, local interconnects are
//!   provisioned for the array),
//! * `dram_words` — compulsory off-chip traffic (charged DRAM energy).
//!
//! Traffic beyond the compulsory tensor sizes arises from **capacity
//! misses**: a pass structure that revisits a tensor only re-reads it from
//! the global buffer when the sub-accelerator's local buffer cannot retain
//! it (`capacity_refetch`), and partial sums only round-trip to the global
//! buffer when they overflow the accumulation buffer. This is the standard
//! MAESTRO-style buffer analysis and is what makes, e.g., NVDLA pay for
//! huge-activation layers (UNet) while staying cheap on late ResNet layers.

use herald_dataflow::{DataflowStyle, Dim, Mapping};
use herald_models::{Layer, LayerOp};
use serde::{Deserialize, Serialize};

/// Eyeriss stages partial sums and input rows in its scratchpad hierarchy
/// so that a group of this many filters shares one input fetch pass.
const EYERISS_K_LOCAL: u64 = 16;

/// Local-buffer and accumulator capacities of a sub-accelerator, derived
/// from its PE count by the cost model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LocalBuffers {
    /// Operand staging buffer (NVDLA CBUF / Eyeriss GLB class), bytes.
    pub local_bytes: u64,
    /// Partial-sum accumulation buffer, bytes.
    pub accum_bytes: u64,
    /// Operand word width, bytes.
    pub word_bytes: u64,
}

/// Number of times a tensor must be re-read from the global buffer given a
/// pass structure that revisits it `passes` times: once if it fits in the
/// local buffer, up to `passes` times if nothing can be retained.
fn capacity_refetch(passes: u64, tensor_bytes: u64, buf_bytes: u64) -> u64 {
    let misses = tensor_bytes.div_ceil(buf_bytes.max(1)).max(1);
    misses.min(passes.max(1))
}

/// Word-granularity data-movement counts for one layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficCounts {
    /// Filter-weight words read from the global buffer.
    pub gb_weight_reads: u64,
    /// Input-activation words read from the global buffer.
    pub gb_input_reads: u64,
    /// Output/partial-sum words read or written at the global buffer.
    pub gb_output_accesses: u64,
    /// Operand words delivered over the sub-accelerator's local NoC.
    pub local_noc_words: u64,
    /// Words exchanged with DRAM (compulsory tensor traffic).
    pub dram_words: u64,
}

impl TrafficCounts {
    /// Total words crossing the global-buffer boundary — the traffic
    /// throttled by the sub-accelerator's global-NoC bandwidth allocation.
    pub fn gb_total(&self) -> u64 {
        self.gb_weight_reads + self.gb_input_reads + self.gb_output_accesses
    }

    /// Derives the traffic of `layer` under `mapping` with default local
    /// buffers (512 B/PE staging, 256 B/PE accumulation, 16-bit words).
    pub fn for_mapping(layer: &Layer, mapping: &Mapping) -> Self {
        let pes = u64::from(mapping.alloc_pes());
        Self::for_mapping_with(
            layer,
            mapping,
            LocalBuffers {
                local_bytes: 512 * pes,
                accum_bytes: 256 * pes,
                word_bytes: 2,
            },
        )
    }

    pub(crate) fn for_mapping_with(layer: &Layer, mapping: &Mapping, bufs: LocalBuffers) -> Self {
        let t = Tensors::of(layer);
        let mut counts = match mapping.style() {
            DataflowStyle::Nvdla => nvdla_traffic(layer, mapping, &t, bufs),
            DataflowStyle::ShiDianNao => shi_traffic(layer, mapping, &t, bufs),
            DataflowStyle::Eyeriss => eyeriss_traffic(layer, mapping, &t, bufs),
        };
        // Compulsory DRAM traffic: every tensor enters/leaves the chip once.
        // Reuse beyond that is captured by the global buffer; layers whose
        // global traffic exceeds GB capacity pay bandwidth (not extra DRAM
        // energy), a deliberate simplification recorded in DESIGN.md.
        counts.dram_words = t.weights + t.inputs + t.outputs;
        counts
    }
}

/// Tensor element counts of a layer.
struct Tensors {
    weights: u64,
    inputs: u64,
    outputs: u64,
    macs: u64,
}

impl Tensors {
    fn of(layer: &Layer) -> Self {
        Self {
            weights: layer.weight_elems(),
            inputs: layer.input_shape().elems(),
            outputs: layer.output_shape().elems(),
            macs: layer.macs(),
        }
    }
}

/// NVDLA (weight-stationary, spatial `C x K` with an adder tree):
///
/// * **Weights** are loaded into PE register files once and stay resident
///   while the full spatial extent streams past: `W` reads.
/// * **Inputs** are revisited once per output-channel group
///   (`ceil(K / f_k)` passes); the CBUF-class local buffer retains what it
///   can, so the refetch factor is capacity-limited.
/// * **Outputs** are spatially reduced across the `f_c` lanes into the
///   accumulation buffer; when the per-group partial-sum tile
///   (`f_k x Y' x X'`, psum-width words) overflows it, partial sums
///   round-trip to the global buffer once per remaining input-channel step.
/// * **Local NoC**: every input word is multicast to the `f_k` cells
///   sharing it, and partial sums traverse the adder tree once per `f_c`
///   group: `M/f_k + M/f_c` injections.
fn nvdla_traffic(
    layer: &Layer,
    mapping: &Mapping,
    t: &Tensors,
    bufs: LocalBuffers,
) -> TrafficCounts {
    let fc = u64::from(mapping.factor(Dim::C));
    let fk = u64::from(mapping.factor(Dim::K));
    let k_steps = u64::from(Dim::K.extent(layer)).div_ceil(fk);
    let c_red = if layer.op().accumulates_across_channels() {
        u64::from(layer.dims().c)
    } else {
        1
    };
    let c_steps = c_red.div_ceil(fc);

    let in_bytes = t.inputs * bufs.word_bytes;
    let in_refetch = capacity_refetch(k_steps, in_bytes, bufs.local_bytes);
    // NVDLA raster-streams the input per K group with no output-stationary
    // window reuse: when the CBUF-class buffer cannot even hold the
    // R-row sliding window of all channels, each input row is re-fetched
    // once per filter row it participates in.
    let window_bytes = u64::from(layer.dims().r)
        * u64::from(layer.dims().c)
        * u64::from(layer.dims().x + 2 * layer.dims().pad)
        * bufs.word_bytes;
    let window_refetch = if in_bytes > bufs.local_bytes && window_bytes > bufs.local_bytes {
        u64::from(layer.dims().r)
    } else {
        1
    };
    // Partial sums are kept at double width until committed.
    let psum_tile_bytes =
        fk * u64::from(layer.out_y()) * u64::from(layer.out_x()) * 2 * bufs.word_bytes;
    let psum_spills = if psum_tile_bytes > bufs.accum_bytes {
        2 * (c_steps - 1)
    } else {
        0
    };
    TrafficCounts {
        gb_weight_reads: t.weights,
        gb_input_reads: t.inputs * in_refetch * window_refetch,
        gb_output_accesses: t.outputs * (1 + psum_spills),
        local_noc_words: t.macs / fk + t.macs / fc,
        dram_words: 0,
    }
}

/// Shi-diannao (output-stationary, spatial `Y x X`):
///
/// * **Outputs** stay in PE accumulators until fully reduced: `O` writes,
///   zero partial-sum re-reads — the style's signature energy win.
/// * **Weights** are broadcast to the grid once per spatial output tile;
///   the local buffer retains them across tiles when they fit
///   (capacity-limited refetch).
/// * **Inputs**: each tile fetches its halo (tile extent plus filter
///   overlap) once per input channel plane; neighbor forwarding covers the
///   intra-tile convolutional reuse.
/// * **Local NoC**: weight broadcast amortizes over the active grid
///   (`M / (f_y f_x)`) and each input word is forwarded into the `R x S`
///   window reuse chain (`M / (R S)` injections).
fn shi_traffic(layer: &Layer, mapping: &Mapping, t: &Tensors, bufs: LocalBuffers) -> TrafficCounts {
    let fy = u64::from(mapping.factor(Dim::Y));
    let fx = u64::from(mapping.factor(Dim::X));
    let y_tiles = u64::from(Dim::Y.extent(layer)).div_ceil(fy);
    let x_tiles = u64::from(Dim::X.extent(layer)).div_ceil(fx);
    let tiles = y_tiles * x_tiles;
    let d = layer.dims();
    let stride = u64::from(d.stride);
    let (eff_r, eff_s) = (
        u64::from(Dim::R.extent(layer)),
        u64::from(Dim::S.extent(layer)),
    );
    // Halo of one spatial tile in input coordinates.
    let halo = ((fy - 1) * stride + eff_r) * ((fx - 1) * stride + eff_s);
    let channel_planes = u64::from(d.c);
    let rs = eff_r * eff_s;
    let w_refetch = capacity_refetch(tiles, t.weights * bufs.word_bytes, bufs.local_bytes);
    TrafficCounts {
        gb_weight_reads: t.weights * w_refetch,
        gb_input_reads: channel_planes * tiles * halo,
        gb_output_accesses: t.outputs,
        local_noc_words: t.macs / (fy * fx) + t.macs / rs,
        dram_words: 0,
    }
}

/// Eyeriss (row-stationary, spatial `R x fold x Y`):
///
/// * **Weights**: filter rows stay resident per PE for one output-row
///   strip; the local buffer retains them across strips when they fit.
/// * **Inputs**: input rows are multicast diagonally; the scratchpad
///   hierarchy lets a group of [`EYERISS_K_LOCAL`] filters share one input
///   pass, and the local buffer caps the refetch across passes.
/// * **Outputs**: partial sums are reduced spatially across the `f_r` rows;
///   the strip of psums round-trips to the global buffer once per remaining
///   fold step when it overflows the accumulation buffer.
/// * **Local NoC**: input rows amortize over the `f_r` diagonal reuse and
///   weights over the row's sliding window: `M/f_r + M/S` injections.
fn eyeriss_traffic(
    layer: &Layer,
    mapping: &Mapping,
    t: &Tensors,
    bufs: LocalBuffers,
) -> TrafficCounts {
    let fy = u64::from(mapping.factor(Dim::Y));
    let fr = u64::from(mapping.factor(Dim::R));
    let y_steps = u64::from(Dim::Y.extent(layer)).div_ceil(fy);
    let depthwise = layer.op() == LayerOp::DepthwiseConv;
    let k_passes = if depthwise {
        1
    } else {
        u64::from(layer.dims().k).div_ceil(EYERISS_K_LOCAL)
    };
    let (fold_dim, c_red) = if depthwise {
        (Dim::K, 1)
    } else {
        (Dim::C, u64::from(layer.dims().c))
    };
    let fold = u64::from(mapping.factor(fold_dim)).max(1);
    let fold_steps = c_red.div_ceil(fold);
    let s = u64::from(Dim::S.extent(layer));

    let w_refetch = capacity_refetch(y_steps, t.weights * bufs.word_bytes, bufs.local_bytes);
    let in_refetch = capacity_refetch(k_passes, t.inputs * bufs.word_bytes, bufs.local_bytes);
    let psum_strip_bytes = EYERISS_K_LOCAL * fy * u64::from(layer.out_x()) * 2 * bufs.word_bytes;
    let psum_spills = if psum_strip_bytes > bufs.accum_bytes {
        2 * (fold_steps - 1)
    } else {
        0
    };
    TrafficCounts {
        gb_weight_reads: t.weights * w_refetch,
        gb_input_reads: t.inputs * in_refetch,
        gb_output_accesses: t.outputs * (1 + psum_spills),
        local_noc_words: t.macs / fr + t.macs / s,
        dram_words: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_dataflow::MappingBuilder;
    use herald_models::LayerDims;

    fn conv(k: u32, c: u32, y: u32, r: u32) -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(k, c, y, y, r, r).with_pad(r / 2),
        )
    }

    fn traffic(layer: &Layer, style: DataflowStyle, pes: u32) -> TrafficCounts {
        let m = MappingBuilder::new(style, pes).best(layer);
        TrafficCounts::for_mapping(layer, &m)
    }

    #[test]
    fn capacity_refetch_bounds() {
        // Fits locally -> single fetch regardless of passes.
        assert_eq!(capacity_refetch(100, 1000, 4096), 1);
        // Never more refetches than passes.
        assert_eq!(capacity_refetch(4, 1 << 30, 1024), 4);
        // Partially fitting tensors land in between.
        assert_eq!(capacity_refetch(100, 3000, 1024), 3);
    }

    #[test]
    fn nvdla_reads_weights_once() {
        let l = conv(512, 512, 7, 3);
        let t = traffic(&l, DataflowStyle::Nvdla, 1024);
        assert_eq!(t.gb_weight_reads, l.weight_elems());
    }

    #[test]
    fn nvdla_small_inputs_fetch_once() {
        // Late ResNet layer: 512x7x7 inputs (50 KB) fit in the local buffer,
        // so K-group revisits are free.
        let l = conv(512, 512, 7, 3);
        let t = traffic(&l, DataflowStyle::Nvdla, 1024);
        assert_eq!(t.gb_input_reads, l.input_shape().elems());
    }

    #[test]
    fn nvdla_large_inputs_refetch_per_capacity() {
        // UNet-scale activations blow the local buffer and are re-streamed.
        let l = conv(64, 128, 388, 3);
        let t = traffic(&l, DataflowStyle::Nvdla, 256);
        assert!(t.gb_input_reads > 3 * l.input_shape().elems());
    }

    #[test]
    fn nvdla_psum_spills_only_for_large_output_tiles() {
        let small = conv(512, 512, 7, 3);
        let big = conv(64, 128, 388, 3);
        let ts = traffic(&small, DataflowStyle::Nvdla, 256);
        let tb = traffic(&big, DataflowStyle::Nvdla, 256);
        assert_eq!(ts.gb_output_accesses, small.output_shape().elems());
        assert!(tb.gb_output_accesses > big.output_shape().elems());
    }

    #[test]
    fn shi_writes_outputs_once() {
        let l = conv(64, 64, 56, 3);
        let t = traffic(&l, DataflowStyle::ShiDianNao, 1024);
        assert_eq!(t.gb_output_accesses, l.output_shape().elems());
    }

    #[test]
    fn shi_retains_small_weights_across_tiles() {
        // Conv weights are tiny; they stay in the local buffer even though
        // the 224x224 layer needs 49 spatial tiles.
        let l = conv(64, 64, 224, 3);
        let t = traffic(&l, DataflowStyle::ShiDianNao, 1024);
        assert_eq!(t.gb_weight_reads, l.weight_elems());
    }

    #[test]
    fn shi_restreams_huge_weights() {
        // An FC-like layer with weights far beyond the local buffer.
        let fc = Layer::new("fc", LayerOp::Fc, LayerDims::fc(4096, 4096));
        let m = MappingBuilder::new(DataflowStyle::ShiDianNao, 64).best(&fc);
        let t = TrafficCounts::for_mapping(&fc, &m);
        // Only one spatial tile exists, so even huge weights stream once.
        assert_eq!(t.gb_weight_reads, fc.weight_elems());
    }

    #[test]
    fn dram_traffic_is_compulsory_tensor_sizes() {
        let l = conv(64, 64, 56, 3);
        for style in DataflowStyle::ALL {
            let t = traffic(&l, style, 1024);
            assert_eq!(
                t.dram_words,
                l.weight_elems() + l.input_shape().elems() + l.output_shape().elems(),
                "{style}"
            );
        }
    }

    #[test]
    fn depthwise_on_nvdla_has_single_channel_step() {
        let dw = Layer::new(
            "dw",
            LayerOp::DepthwiseConv,
            LayerDims::conv(96, 96, 56, 56, 3, 3).with_pad(1),
        );
        let t = traffic(&dw, DataflowStyle::Nvdla, 1024);
        // No spatial channel accumulation and a small psum tile -> outputs
        // written exactly once.
        assert_eq!(t.gb_output_accesses, dw.output_shape().elems());
    }

    #[test]
    fn eyeriss_amortizes_input_over_filter_groups() {
        // Large inputs that exceed the local buffer get refetched per
        // filter group, capacity-capped.
        let l = conv(64, 64, 112, 3);
        let t = traffic(&l, DataflowStyle::Eyeriss, 256);
        let passes = 4; // K = 64 -> 4 groups of 16.
        assert!(t.gb_input_reads <= l.input_shape().elems() * passes);
        assert!(t.gb_input_reads >= l.input_shape().elems());
    }

    #[test]
    fn gb_total_sums_components() {
        let t = TrafficCounts {
            gb_weight_reads: 1,
            gb_input_reads: 2,
            gb_output_accesses: 3,
            local_noc_words: 100,
            dram_words: 50,
        };
        assert_eq!(t.gb_total(), 6);
    }

    #[test]
    fn upconv_traffic_is_finite_and_positive() {
        let up = Layer::new(
            "up",
            LayerOp::TransposedConv,
            LayerDims::conv(512, 1024, 28, 28, 2, 2).with_stride(2),
        );
        for style in DataflowStyle::ALL {
            let t = traffic(&up, style, 1024);
            assert!(t.gb_total() > 0, "{style}");
            assert!(t.local_noc_words > 0, "{style}");
        }
    }
}
