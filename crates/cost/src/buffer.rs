//! Buffer-requirement analysis for the scheduler's memory constraint.

use herald_dataflow::{DataflowStyle, Dim, Mapping};
use herald_models::Layer;
use serde::{Deserialize, Serialize};

/// Eyeriss filter-group staging depth (see `traffic::EYERISS_K_LOCAL`).
const EYERISS_K_LOCAL: u64 = 16;

/// The memory a layer occupies while executing: the double-buffered tile
/// working set inside the sub-accelerator, plus the activation footprint it
/// stages in the shared global buffer.
///
/// The Herald scheduler sums the [`BufferRequirement::occupancy_bytes`] of
/// all concurrently running layers and defers layers that would overflow
/// the global buffer (the paper's `mem_size_cond`, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BufferRequirement {
    /// Double-buffered tile working set (weights + input halo + output
    /// strip), in bytes.
    pub tile_bytes: u64,
    /// Full input + output activation footprint, in bytes. Activations
    /// larger than the global buffer stream through it, so the scheduler
    /// caps this with its staging policy.
    pub io_bytes: u64,
    /// Full weight footprint, in bytes.
    pub weight_bytes: u64,
}

impl BufferRequirement {
    /// Derives the requirement of `layer` under `mapping`, with
    /// `bytes_per_elem`-wide words.
    pub fn for_mapping(layer: &Layer, mapping: &Mapping, bytes_per_elem: u64) -> Self {
        let d = layer.dims();
        let in_cols = u64::from(d.x + 2 * d.pad);
        let (w_tile, i_tile, o_tile) = match mapping.style() {
            // Weight-stationary: the full spatial weight tile is resident;
            // a filter-height band of input rows per lane streams through;
            // one output row per cell is staged.
            DataflowStyle::Nvdla => {
                let fc = u64::from(mapping.factor(Dim::C));
                let fk = u64::from(mapping.factor(Dim::K));
                let rs = u64::from(d.r) * u64::from(d.s);
                (
                    fk * fc * rs,
                    fc * in_cols * u64::from(d.r),
                    fk * u64::from(layer.out_x()),
                )
            }
            // Output-stationary: one filter plane streams; the tile halo is
            // staged; the psum tile lives in the PEs themselves, staged once
            // on write-back.
            DataflowStyle::ShiDianNao => {
                let fy = u64::from(mapping.factor(Dim::Y));
                let fx = u64::from(mapping.factor(Dim::X));
                let stride = u64::from(d.stride);
                let halo =
                    ((fy - 1) * stride + u64::from(d.r)) * ((fx - 1) * stride + u64::from(d.s));
                (u64::from(d.r) * u64::from(d.s), halo, fy * fx)
            }
            // Row-stationary: filter rows for the staged filter group,
            // a filter-height band of input rows per fold, one output strip.
            DataflowStyle::Eyeriss => {
                let fr = u64::from(mapping.factor(Dim::R));
                let fy = u64::from(mapping.factor(Dim::Y));
                let fold = DataflowStyle::Eyeriss
                    .parallel_dims()
                    .iter()
                    .find(|dim| !matches!(dim, Dim::R | Dim::Y))
                    .map_or(1, |&dim| u64::from(mapping.factor(dim)));
                (
                    fr * fold * u64::from(d.s) * EYERISS_K_LOCAL,
                    fr * fold * in_cols,
                    fy * u64::from(layer.out_x()),
                )
            }
        };
        BufferRequirement {
            tile_bytes: 2 * bytes_per_elem * (w_tile + i_tile + o_tile),
            io_bytes: bytes_per_elem * (layer.input_shape().elems() + layer.output_shape().elems()),
            weight_bytes: bytes_per_elem * layer.weight_elems(),
        }
    }

    /// The global-buffer occupancy the scheduler charges for this layer
    /// while it runs: the tile working set plus the staged activation
    /// footprint, the latter capped at `staging_cap_bytes` (activations
    /// beyond the cap stream through DRAM, which the traffic model already
    /// charges for).
    pub fn occupancy_bytes(&self, staging_cap_bytes: u64) -> u64 {
        self.tile_bytes + self.io_bytes.min(staging_cap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_dataflow::MappingBuilder;
    use herald_models::{LayerDims, LayerOp};

    fn layer() -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(64, 32, 56, 56, 3, 3).with_pad(1),
        )
    }

    #[test]
    fn tile_bytes_are_positive_for_all_styles() {
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, 1024).best(&layer());
            let b = BufferRequirement::for_mapping(&layer(), &m, 2);
            assert!(b.tile_bytes > 0, "{style}");
        }
    }

    #[test]
    fn tile_is_much_smaller_than_io_for_big_layers() {
        // The whole point of tiling: the working set fits on-chip even when
        // activations do not.
        let big = Layer::new(
            "enc1",
            LayerOp::Conv2d,
            LayerDims::conv(64, 64, 570, 570, 3, 3),
        );
        let m = MappingBuilder::new(DataflowStyle::ShiDianNao, 1024).best(&big);
        let b = BufferRequirement::for_mapping(&big, &m, 2);
        assert!(b.tile_bytes * 100 < b.io_bytes);
    }

    #[test]
    fn occupancy_caps_streamed_activations() {
        let m = MappingBuilder::new(DataflowStyle::ShiDianNao, 1024).best(&layer());
        let b = BufferRequirement::for_mapping(&layer(), &m, 2);
        let cap = 1024;
        assert_eq!(b.occupancy_bytes(cap), b.tile_bytes + 1024);
        assert_eq!(b.occupancy_bytes(u64::MAX), b.tile_bytes + b.io_bytes);
    }

    #[test]
    fn weight_bytes_match_layer() {
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 256).best(&layer());
        let b = BufferRequirement::for_mapping(&layer(), &m, 2);
        assert_eq!(b.weight_bytes, layer().weight_elems() * 2);
    }

    #[test]
    fn io_bytes_match_tensor_shapes() {
        let m = MappingBuilder::new(DataflowStyle::Eyeriss, 256).best(&layer());
        let b = BufferRequirement::for_mapping(&layer(), &m, 2);
        let expected = 2 * (layer().input_shape().elems() + layer().output_shape().elems());
        assert_eq!(b.io_bytes, expected);
    }
}
