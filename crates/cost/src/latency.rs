//! Latency assembly: roofline of compute and bandwidth-throttled traffic.

use crate::TrafficCounts;
use herald_dataflow::Mapping;
use herald_models::Layer;

/// Fixed per-layer overhead cycles: pipeline fill/drain plus layer launch
/// control (tile descriptors, double-buffer priming). Also the hook where
/// Herald's optional context-change penalty is charged (Sec. IV-A).
pub(crate) const LAYER_OVERHEAD_CYCLES: u64 = 1000;

/// Latency components of one layer execution, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LatencyParts {
    /// Pure compute cycles (MACs through the spatially unrolled array).
    pub compute_cycles: u64,
    /// Cycles to move the global-buffer traffic at the allocated bandwidth.
    pub traffic_cycles: u64,
    /// Fixed overhead plus any reconfiguration penalty.
    pub overhead_cycles: u64,
}

impl LatencyParts {
    /// Steady-state double-buffered execution overlaps compute with data
    /// movement (execution-model step 6, Sec. IV-A), so the layer runs at
    /// the *maximum* of the two rates, plus fill/drain overhead.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles.max(self.traffic_cycles) + self.overhead_cycles
    }
}

/// Derives the latency parts of a layer under a mapping with
/// `bandwidth_gbps` of global-NoC bandwidth and a `clock_ghz` clock.
pub(crate) fn latency_parts(
    layer: &Layer,
    mapping: &Mapping,
    traffic: &TrafficCounts,
    bandwidth_gbps: f64,
    clock_ghz: f64,
    bytes_per_elem: u64,
    extra_overhead_cycles: u64,
) -> LatencyParts {
    let compute_cycles = mapping.compute_cycles(layer);
    let bytes = traffic.gb_total() * bytes_per_elem;
    // Bytes per cycle delivered by this sub-accelerator's NoC allocation.
    let bytes_per_cycle = bandwidth_gbps / clock_ghz;
    let traffic_cycles = if bytes == 0 {
        0
    } else {
        (bytes as f64 / bytes_per_cycle).ceil() as u64
    };
    LatencyParts {
        compute_cycles,
        traffic_cycles,
        overhead_cycles: LAYER_OVERHEAD_CYCLES + extra_overhead_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_dataflow::{DataflowStyle, MappingBuilder};
    use herald_models::{Layer, LayerDims, LayerOp};

    fn layer() -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(64, 64, 56, 56, 3, 3).with_pad(1),
        )
    }

    fn parts(bw: f64) -> LatencyParts {
        let l = layer();
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&l);
        let t = TrafficCounts::for_mapping(&l, &m);
        latency_parts(&l, &m, &t, bw, 1.0, 2, 0)
    }

    #[test]
    fn ample_bandwidth_makes_layers_compute_bound() {
        let p = parts(1e6);
        assert!(p.compute_cycles > p.traffic_cycles);
        assert_eq!(p.total_cycles(), p.compute_cycles + LAYER_OVERHEAD_CYCLES);
    }

    #[test]
    fn starved_bandwidth_makes_layers_memory_bound() {
        let p = parts(0.01);
        assert!(p.traffic_cycles > p.compute_cycles);
        assert_eq!(p.total_cycles(), p.traffic_cycles + LAYER_OVERHEAD_CYCLES);
    }

    #[test]
    fn halving_bandwidth_doubles_traffic_cycles() {
        let fast = parts(32.0);
        let slow = parts(16.0);
        let ratio = slow.traffic_cycles as f64 / fast.traffic_cycles as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn extra_overhead_is_added() {
        let l = layer();
        let m = MappingBuilder::new(DataflowStyle::Nvdla, 1024).best(&l);
        let t = TrafficCounts::for_mapping(&l, &m);
        let p = latency_parts(&l, &m, &t, 32.0, 1.0, 2, 500);
        assert_eq!(p.overhead_cycles, LAYER_OVERHEAD_CYCLES + 500);
    }
}
