//! The cost model facade: queries, results and memoization.

use crate::latency::{latency_parts, LatencyParts};
use crate::{BufferRequirement, EnergyBreakdown, EnergyModel, Metric, TrafficCounts};
use herald_dataflow::{DataflowStyle, Mapping, MappingBuilder};
use herald_models::{Layer, LayerDims, LayerOp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Tunable parameters of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModelConfig {
    /// Per-action energy table.
    pub energy: EnergyModel,
    /// Accelerator clock in GHz (all styles run at the same clock, as in
    /// the paper's iso-resource comparison).
    pub clock_ghz: f64,
    /// Operand width in bytes (2 = 16-bit, the MAESTRO default).
    pub bytes_per_elem: u64,
    /// Multiplicative energy tax on compute + local-NoC energy for
    /// reconfigurable (RDA) arrays: the switches, wires and controllers of
    /// e.g. MAERI. Default 0.117, calibrated to the paper's measurement
    /// that MAERI required 11.7% more energy on average than an NVDLA-style
    /// FDA.
    pub rda_energy_overhead: f64,
    /// Per-layer reconfiguration stall for RDAs, in cycles.
    pub rda_reconfig_cycles: u64,
    /// Per-layer reconfiguration energy for RDAs, in picojoules per PE
    /// (distributing the new configuration across the array).
    pub rda_reconfig_pj_per_pe: f64,
    /// Optional sub-accelerator context-change penalty in cycles, charged
    /// on every layer (Herald "provides an option to specify the latency
    /// and energy penalties" for data-layout changes, Sec. IV-A). Zero by
    /// default: the evaluation picks dataflows with identical inner-loop
    /// order, eliminating layout conversion.
    pub context_change_cycles: u64,
}

impl CostModelConfig {
    /// A bit-exact fingerprint of every knob of this configuration (all
    /// float fields captured via `to_bits`). Two configurations with
    /// equal fingerprints produce identical [`LayerCost`]s for every
    /// query, so the fingerprint is usable in memo keys that must never
    /// alias across cost models.
    #[must_use]
    pub fn fingerprint(&self) -> [u64; 11] {
        [
            self.energy.mac_pj.to_bits(),
            self.energy.rf_pj.to_bits(),
            self.energy.noc_pj.to_bits(),
            self.energy.gb_pj.to_bits(),
            self.energy.dram_pj.to_bits(),
            self.clock_ghz.to_bits(),
            self.bytes_per_elem,
            self.rda_energy_overhead.to_bits(),
            self.rda_reconfig_cycles,
            self.rda_reconfig_pj_per_pe.to_bits(),
            self.context_change_cycles,
        ]
    }
}

impl Default for CostModelConfig {
    fn default() -> Self {
        Self {
            energy: EnergyModel::default(),
            clock_ghz: 1.0,
            bytes_per_elem: 2,
            rda_energy_overhead: 0.117,
            rda_reconfig_cycles: 2000,
            rda_reconfig_pj_per_pe: 20.0,
            context_change_cycles: 0,
        }
    }
}

/// A cost query: which dataflow on how many PEs with how much bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostQuery {
    /// Dataflow style to instantiate.
    pub style: DataflowStyle,
    /// PEs of the (sub-)accelerator.
    pub pes: u32,
    /// Global-NoC bandwidth allocated to the (sub-)accelerator, GB/s.
    pub bandwidth_gbps: f64,
    /// Whether the array pays reconfigurable-hardware taxes (RDA).
    pub reconfigurable: bool,
    /// Whether the array has sparsity-gating hardware (zero-skip logic and
    /// compressed weight delivery). Without it, a sparse layer is charged
    /// its dense cost.
    pub sparse_gating: bool,
}

impl CostQuery {
    /// A fixed-dataflow query.
    pub fn fixed(style: DataflowStyle, pes: u32, bandwidth_gbps: f64) -> Self {
        Self {
            style,
            pes,
            bandwidth_gbps,
            reconfigurable: false,
            sparse_gating: false,
        }
    }
}

/// Fraction of the zero-operand work a sparsity-gated array actually
/// elides, per dataflow class.
///
/// This encodes the PAPERS.md heterogeneity argument for sparse tensor
/// acceleration: *flexible* fabrics (reconfigurable, MAERI-class) can
/// re-form their distribution/reduction trees around nonzeros and skip
/// nearly all gated work, while *rigid* arrays recover progressively less
/// of the idle cycles — Shi-diannao's lock-step output-stationary grid
/// barely benefits because its systolic schedule cannot compress holes.
/// The cost model turns this into a multiplier
/// `eff = 1 - skip * (1 - density)` on compute cycles, compute energy and
/// local-NoC traffic.
pub(crate) fn sparsity_skip_fraction(style: DataflowStyle, reconfigurable: bool) -> f64 {
    if reconfigurable {
        return 0.95;
    }
    match style {
        DataflowStyle::Nvdla => 0.60,
        DataflowStyle::Eyeriss => 0.75,
        DataflowStyle::ShiDianNao => 0.20,
    }
}

/// `ceil(count * factor)` — the monotone integer scaling used for all
/// density-derived traffic and cycle reductions.
fn scale_count(count: u64, factor: f64) -> u64 {
    (count as f64 * factor).ceil() as u64
}

/// The modeled cost of running one layer on one (sub-)accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Style the cost was computed for.
    pub style: DataflowStyle,
    /// PEs allocated.
    pub pes: u32,
    /// Mapping utilization of compute units (paper Fig. 5).
    pub utilization: f64,
    /// PEs receiving work in a steady-state tile.
    pub active_pes: u32,
    /// Pure compute cycles.
    pub compute_cycles: u64,
    /// Bandwidth-throttled traffic cycles.
    pub traffic_cycles: u64,
    /// Fixed + reconfiguration overhead cycles.
    pub overhead_cycles: u64,
    /// End-to-end cycles (`max(compute, traffic) + overhead`).
    pub total_cycles: u64,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Energy breakdown in joules.
    pub energy: EnergyBreakdown,
    /// Data-movement counts.
    pub traffic: TrafficCounts,
    /// Buffer requirements for the scheduler's memory constraint.
    pub buffer: BufferRequirement,
}

impl LayerCost {
    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        self.latency_s * self.energy_j()
    }

    /// This cost under a metric.
    pub fn score(&self, metric: Metric) -> f64 {
        metric.score(self.latency_s, self.energy_j())
    }
}

type CacheKey = (LayerDims, LayerOp, DataflowStyle, u32, u64, bool, u64, bool);

/// The analytical cost model, with internal memoization.
///
/// Thread-safe: schedulers and the DSE sweep may query it from worker
/// threads concurrently.
///
/// # Example
///
/// ```
/// use herald_cost::{CostModel, Metric};
/// use herald_models::{Layer, LayerDims, LayerOp};
///
/// let model = CostModel::default();
/// let fc = Layer::new("fc", LayerOp::Fc, LayerDims::fc(1000, 2048));
/// // The RDA evaluation picks the best style per layer but pays the
/// // reconfigurable-hardware tax.
/// let best = model.evaluate_rda(&fc, 1024, 64.0, Metric::Edp);
/// assert!(best.energy.reconfig_j > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct CostModel {
    config: CostModelConfig,
    cache: RwLock<HashMap<CacheKey, LayerCost>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CostModel {
    /// Creates a cost model with the given configuration.
    pub fn new(config: CostModelConfig) -> Self {
        Self {
            config,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &CostModelConfig {
        &self.config
    }

    /// Number of distinct queries answered so far (cache size).
    pub fn cached_queries(&self) -> usize {
        self.cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Queries answered from the memo without recomputation.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that required a fresh analytical evaluation.
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evaluates a layer on a fixed-dataflow (sub-)accelerator.
    pub fn evaluate(
        &self,
        layer: &Layer,
        style: DataflowStyle,
        pes: u32,
        bandwidth_gbps: f64,
    ) -> LayerCost {
        self.query(layer, CostQuery::fixed(style, pes, bandwidth_gbps))
    }

    /// Evaluates a layer on a fixed-dataflow (sub-)accelerator with or
    /// without sparsity-gating hardware. With `sparse_gating = false`
    /// (or a fully dense layer) this is exactly [`CostModel::evaluate`].
    pub fn evaluate_gated(
        &self,
        layer: &Layer,
        style: DataflowStyle,
        pes: u32,
        bandwidth_gbps: f64,
        sparse_gating: bool,
    ) -> LayerCost {
        self.query(
            layer,
            CostQuery {
                sparse_gating,
                ..CostQuery::fixed(style, pes, bandwidth_gbps)
            },
        )
    }

    /// Evaluates a layer under an arbitrary [`CostQuery`].
    pub fn query(&self, layer: &Layer, q: CostQuery) -> LayerCost {
        let key: CacheKey = (
            *layer.dims(),
            layer.op(),
            q.style,
            q.pes,
            q.bandwidth_gbps.to_bits(),
            q.reconfigurable,
            layer.density().to_bits(),
            q.sparse_gating,
        );
        if let Some(hit) = self
            .cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cost = self.compute(layer, q);
        self.cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, cost.clone());
        cost
    }

    /// Evaluates a layer under an explicit, externally constructed mapping
    /// (not memoized).
    pub fn evaluate_mapping(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        bandwidth_gbps: f64,
    ) -> LayerCost {
        self.assemble(layer, mapping, bandwidth_gbps, false)
    }

    /// Evaluates a layer on a reconfigurable array (RDA, e.g. MAERI): the
    /// best style under `metric` among all three evaluated dataflows, with
    /// the reconfiguration taxes applied.
    pub fn evaluate_rda(
        &self,
        layer: &Layer,
        pes: u32,
        bandwidth_gbps: f64,
        metric: Metric,
    ) -> LayerCost {
        self.evaluate_rda_gated(layer, pes, bandwidth_gbps, metric, false)
    }

    /// [`CostModel::evaluate_rda`] with optional sparsity-gating hardware.
    /// With `sparse_gating = false` (or a fully dense layer) this is
    /// exactly `evaluate_rda`.
    pub fn evaluate_rda_gated(
        &self,
        layer: &Layer,
        pes: u32,
        bandwidth_gbps: f64,
        metric: Metric,
        sparse_gating: bool,
    ) -> LayerCost {
        DataflowStyle::ALL
            .into_iter()
            .map(|style| {
                self.query(
                    layer,
                    CostQuery {
                        style,
                        pes,
                        bandwidth_gbps,
                        reconfigurable: true,
                        sparse_gating,
                    },
                )
            })
            .min_by(|a, b| a.score(metric).total_cmp(&b.score(metric)))
            .expect("at least one style")
    }

    /// The best fixed style for a layer under `metric` — the per-layer
    /// dataflow preference that drives the Herald scheduler.
    pub fn best_style(
        &self,
        layer: &Layer,
        pes: u32,
        bandwidth_gbps: f64,
        metric: Metric,
    ) -> (DataflowStyle, LayerCost) {
        DataflowStyle::ALL
            .into_iter()
            .map(|style| (style, self.evaluate(layer, style, pes, bandwidth_gbps)))
            .min_by(|a, b| a.1.score(metric).total_cmp(&b.1.score(metric)))
            .expect("at least one style")
    }

    fn compute(&self, layer: &Layer, q: CostQuery) -> LayerCost {
        let mapping = MappingBuilder::new(q.style, q.pes).best(layer);
        self.assemble_gated(
            layer,
            &mapping,
            q.bandwidth_gbps,
            q.reconfigurable,
            q.sparse_gating,
        )
    }

    fn assemble(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        bandwidth_gbps: f64,
        reconfigurable: bool,
    ) -> LayerCost {
        self.assemble_gated(layer, mapping, bandwidth_gbps, reconfigurable, false)
    }

    fn assemble_gated(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        bandwidth_gbps: f64,
        reconfigurable: bool,
        sparse_gating: bool,
    ) -> LayerCost {
        let cfg = &self.config;
        let mut traffic = TrafficCounts::for_mapping(layer, mapping);
        let buffer = BufferRequirement::for_mapping(layer, mapping, cfg.bytes_per_elem);
        // Sparsity: a gated array skips a class-dependent fraction of the
        // zero work. Dense layers (density = 1.0) and ungated hardware take
        // none of this branch, so those costs are bit-identical to the
        // pre-density model.
        let density = layer.density();
        let sparse = sparse_gating && density < 1.0;
        let eff = 1.0 - sparsity_skip_fraction(mapping.style(), reconfigurable) * (1.0 - density);
        if sparse {
            // Compressed weights shrink both global-buffer and DRAM weight
            // streams by the density; activations stay dense (no activation
            // sparsity is modeled). Local-NoC deliveries track the elided
            // MACs.
            let dense_weights = layer.weight_elems();
            let sparse_weights = scale_count(dense_weights, density);
            traffic.gb_weight_reads = scale_count(traffic.gb_weight_reads, density);
            traffic.local_noc_words = scale_count(traffic.local_noc_words, eff);
            traffic.dram_words = traffic.dram_words - dense_weights + sparse_weights;
        }
        let extra_cycles = cfg.context_change_cycles
            + if reconfigurable {
                cfg.rda_reconfig_cycles
            } else {
                0
            };
        let mut parts: LatencyParts = latency_parts(
            layer,
            mapping,
            &traffic,
            bandwidth_gbps,
            cfg.clock_ghz,
            cfg.bytes_per_elem,
            extra_cycles,
        );
        if sparse {
            parts.compute_cycles = scale_count(parts.compute_cycles, eff).max(1);
        }
        let total_cycles = parts.total_cycles();
        let latency_s = total_cycles as f64 / (cfg.clock_ghz * 1e9);

        const PJ: f64 = 1e-12;
        let e = &cfg.energy;
        let tax = if reconfigurable {
            1.0 + cfg.rda_energy_overhead
        } else {
            1.0
        };
        let effective_macs = if sparse {
            layer.macs() as f64 * eff
        } else {
            layer.macs() as f64
        };
        let energy = EnergyBreakdown {
            compute_j: effective_macs * e.mac_with_rf_pj() * PJ * tax,
            noc_j: traffic.local_noc_words as f64 * e.noc_pj * PJ * tax,
            gb_j: traffic.gb_total() as f64 * e.gb_pj * PJ,
            dram_j: traffic.dram_words as f64 * e.dram_pj * PJ,
            reconfig_j: if reconfigurable {
                f64::from(mapping.alloc_pes()) * cfg.rda_reconfig_pj_per_pe * PJ
            } else {
                0.0
            },
        };

        LayerCost {
            style: mapping.style(),
            pes: mapping.alloc_pes(),
            utilization: mapping.utilization(),
            active_pes: mapping.active_pes(),
            compute_cycles: parts.compute_cycles,
            traffic_cycles: parts.traffic_cycles,
            overhead_cycles: parts.overhead_cycles,
            total_cycles,
            latency_s,
            energy,
            traffic,
            buffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(k: u32, c: u32, y: u32, r: u32) -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(k, c, y, y, r, r).with_pad(r / 2),
        )
    }

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn early_layer_prefers_shi_diannao() {
        // Fig. 5 layer 1: shallow channels, large activation.
        let layer = conv(64, 3, 112, 3);
        let (style, _) = model().best_style(&layer, 1024, 32.0, Metric::Edp);
        assert_eq!(style, DataflowStyle::ShiDianNao);
    }

    #[test]
    fn late_layer_prefers_nvdla() {
        // Fig. 5 layer 2: deep channels, tiny activation.
        let layer = conv(512, 512, 7, 3);
        let (style, _) = model().best_style(&layer, 1024, 32.0, Metric::Edp);
        assert_eq!(style, DataflowStyle::Nvdla);
    }

    #[test]
    fn depthwise_layer_abandons_nvdla() {
        // Fig. 5 layer 3: the adder tree is useless without cross-channel
        // accumulation, so NVDLA loses by a wide margin (the paper compares
        // only NVDLA vs Shi-diannao; our Eyeriss model also handles
        // depth-wise well, and either non-NVDLA winner preserves the
        // claim).
        let dw = Layer::new(
            "dw",
            LayerOp::DepthwiseConv,
            LayerDims::conv(96, 96, 56, 56, 3, 3).with_pad(1),
        );
        let m = model();
        let (style, best) = m.best_style(&dw, 1024, 32.0, Metric::Edp);
        assert_ne!(style, DataflowStyle::Nvdla);
        let nvdla = m.evaluate(&dw, DataflowStyle::Nvdla, 1024, 32.0);
        let shi = m.evaluate(&dw, DataflowStyle::ShiDianNao, 1024, 32.0);
        assert!(nvdla.edp() > 5.0 * shi.edp());
        assert!(best.edp() <= shi.edp());
    }

    #[test]
    fn fc_layer_prefers_nvdla_latency() {
        let fc = Layer::new("fc", LayerOp::Fc, LayerDims::fc(1000, 2048));
        let m = model();
        let nvdla = m.evaluate(&fc, DataflowStyle::Nvdla, 1024, 32.0);
        let shi = m.evaluate(&fc, DataflowStyle::ShiDianNao, 1024, 32.0);
        assert!(nvdla.latency_s < shi.latency_s);
    }

    #[test]
    fn cache_returns_identical_results() {
        let m = model();
        let layer = conv(64, 64, 56, 3);
        let a = m.evaluate(&layer, DataflowStyle::Nvdla, 1024, 32.0);
        assert_eq!(m.cached_queries(), 1);
        let b = m.evaluate(&layer, DataflowStyle::Nvdla, 1024, 32.0);
        assert_eq!(m.cached_queries(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn rda_pays_energy_tax_over_same_style_fda() {
        let m = model();
        let layer = conv(512, 512, 7, 3);
        let fda = m.evaluate(&layer, DataflowStyle::Nvdla, 1024, 32.0);
        let rda = m.query(
            &layer,
            CostQuery {
                style: DataflowStyle::Nvdla,
                pes: 1024,
                bandwidth_gbps: 32.0,
                reconfigurable: true,
                sparse_gating: false,
            },
        );
        assert!(rda.energy_j() > fda.energy_j());
        assert!(rda.total_cycles > fda.total_cycles);
    }

    #[test]
    fn rda_latency_beats_each_fda_on_mixed_pair_of_layers() {
        // The RDA's whole value: per-layer best style. Summed over one
        // NVDLA-friendly and one Shi-friendly layer it beats either FDA.
        let m = model();
        let early = conv(64, 3, 112, 3);
        let late = conv(512, 512, 7, 3);
        let rda: f64 = [&early, &late]
            .iter()
            .map(|l| m.evaluate_rda(l, 1024, 32.0, Metric::Latency).latency_s)
            .sum();
        for style in DataflowStyle::ALL {
            let fda: f64 = [&early, &late]
                .iter()
                .map(|l| m.evaluate(l, style, 1024, 32.0).latency_s)
                .sum();
            // The RDA pays reconfiguration stalls, so allow a sliver.
            assert!(rda < fda * 1.01, "{style}: rda {rda} vs fda {fda}");
        }
    }

    #[test]
    fn lower_bandwidth_hurts_memory_bound_layers() {
        let fc = Layer::new("fc", LayerOp::Fc, LayerDims::fc(4096, 4096));
        let m = model();
        let fast = m.evaluate(&fc, DataflowStyle::Nvdla, 1024, 256.0);
        let slow = m.evaluate(&fc, DataflowStyle::Nvdla, 1024, 16.0);
        assert!(slow.latency_s > 4.0 * fast.latency_s);
        // Energy is bandwidth-independent.
        assert!((slow.energy_j() - fast.energy_j()).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let m = model();
        for style in DataflowStyle::ALL {
            let c = m.evaluate(&conv(64, 3, 112, 3), style, 1024, 32.0);
            assert!(c.utilization > 0.0 && c.utilization <= 1.0, "{style}");
        }
    }

    #[test]
    fn more_pes_never_increase_compute_cycles() {
        let layer = conv(256, 256, 28, 3);
        let m = model();
        let mut last = u64::MAX;
        for pes in [64u32, 256, 1024, 4096] {
            let c = m.evaluate(&layer, DataflowStyle::Nvdla, pes, 1e9);
            assert!(c.compute_cycles <= last, "{pes}");
            last = c.compute_cycles;
        }
    }

    #[test]
    fn edp_is_latency_times_energy() {
        let m = model();
        let c = m.evaluate(&conv(64, 64, 28, 3), DataflowStyle::Eyeriss, 256, 32.0);
        assert!((c.edp() - c.latency_s * c.energy_j()).abs() < 1e-15);
        assert_eq!(c.score(Metric::Edp), c.edp());
        assert_eq!(c.score(Metric::Latency), c.latency_s);
    }

    #[test]
    fn asymmetric_layers_are_handled() {
        // GNMT-style GEMMs have y = 25, x = 1 — wildly asymmetric spatial
        // extents must not break any style.
        let gemm = Layer::new("g", LayerOp::Fc, LayerDims::gemm(4096, 1024, 25));
        let m = model();
        for style in DataflowStyle::ALL {
            let c = m.evaluate(&gemm, style, 1024, 64.0);
            assert!(c.latency_s > 0.0, "{style}");
            assert!(c.compute_cycles >= gemm.macs() / 1024, "{style}");
        }
        // A wide-but-short conv (panorama-like input).
        let wide = Layer::new(
            "wide",
            LayerOp::Conv2d,
            LayerDims::conv(32, 16, 16, 512, 3, 3).with_pad(1),
        );
        for style in DataflowStyle::ALL {
            let c = m.evaluate(&wide, style, 1024, 64.0);
            assert!(c.utilization > 0.0 && c.utilization <= 1.0, "{style}");
        }
    }

    #[test]
    fn strided_conv_touches_fewer_inputs_on_shi() {
        // Output-stationary tiles of a stride-2 conv sample the input
        // sparsely; traffic must reflect that rather than charging the
        // dense halo of the unstrided case.
        let m = model();
        let dense = conv(64, 64, 56, 3);
        let strided = Layer::new(
            "s2",
            LayerOp::Conv2d,
            LayerDims::conv(64, 64, 56, 56, 3, 3)
                .with_stride(2)
                .with_pad(1),
        );
        let cd = m.evaluate(&dense, DataflowStyle::ShiDianNao, 1024, 16.0);
        let cs = m.evaluate(&strided, DataflowStyle::ShiDianNao, 1024, 16.0);
        // 4x fewer output pixels -> far less input traffic.
        assert!(cs.traffic.gb_input_reads < cd.traffic.gb_input_reads);
    }

    #[test]
    fn one_gbps_edge_case_is_memory_bound() {
        let m = model();
        let c = m.evaluate(&conv(256, 256, 28, 3), DataflowStyle::Nvdla, 1024, 1.0);
        assert!(c.traffic_cycles > c.compute_cycles);
        assert_eq!(c.total_cycles, c.traffic_cycles + c.overhead_cycles);
    }

    #[test]
    fn fingerprints_separate_distinct_configs() {
        let base = CostModelConfig::default();
        assert_eq!(base.fingerprint(), CostModelConfig::default().fingerprint());
        let tweaked = CostModelConfig {
            clock_ghz: 2.0,
            ..Default::default()
        };
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let energy = CostModelConfig {
            energy: EnergyModel {
                dram_pj: 500.0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_ne!(base.fingerprint(), energy.fingerprint());
    }

    #[test]
    fn gating_is_a_noop_on_dense_layers() {
        // The sparse branch must be untaken at density = 1.0: gated and
        // ungated costs are bit-identical, preserving every golden result.
        let m = model();
        let layer = conv(256, 256, 28, 3);
        for style in DataflowStyle::ALL {
            let dense = m.evaluate(&layer, style, 1024, 32.0);
            let gated = m.evaluate_gated(&layer, style, 1024, 32.0, true);
            assert_eq!(dense, gated, "{style}");
        }
        let rda = m.evaluate_rda(&layer, 1024, 32.0, Metric::Edp);
        let rda_gated = m.evaluate_rda_gated(&layer, 1024, 32.0, Metric::Edp, true);
        assert_eq!(rda, rda_gated);
    }

    #[test]
    fn ungated_hardware_charges_dense_cost_for_sparse_layers() {
        let m = model();
        let dense = conv(256, 256, 28, 3);
        let sparse = dense.clone().with_density(0.3);
        let cd = m.evaluate(&dense, DataflowStyle::Nvdla, 1024, 32.0);
        let cs = m.evaluate(&sparse, DataflowStyle::Nvdla, 1024, 32.0);
        assert_eq!(cd.total_cycles, cs.total_cycles);
        assert_eq!(cd.energy, cs.energy);
        assert_eq!(cd.traffic, cs.traffic);
    }

    #[test]
    fn gated_sparse_layers_are_cheaper_everywhere() {
        let m = model();
        let sparse = conv(256, 256, 28, 3).with_density(0.3);
        for style in DataflowStyle::ALL {
            let dense_cost = m.evaluate(&sparse, style, 1024, 32.0);
            let gated = m.evaluate_gated(&sparse, style, 1024, 32.0, true);
            assert!(gated.total_cycles <= dense_cost.total_cycles, "{style}");
            assert!(gated.energy_j() < dense_cost.energy_j(), "{style}");
            assert!(
                gated.traffic.gb_total() < dense_cost.traffic.gb_total(),
                "{style}"
            );
            // Activations stay dense.
            assert_eq!(
                gated.traffic.gb_input_reads,
                dense_cost.traffic.gb_input_reads
            );
        }
    }

    #[test]
    fn flexible_classes_skip_more_zero_work_than_rigid_arrays() {
        // The heterogeneity argument: reconfigurable fabrics recover ~95%
        // of the gated work, Shi-diannao's rigid grid only 20%.
        let m = model();
        let sparse = conv(256, 256, 28, 3).with_density(0.3);
        let shi_dense = m.evaluate(&sparse, DataflowStyle::ShiDianNao, 1024, 1e6);
        let shi_gated = m.evaluate_gated(&sparse, DataflowStyle::ShiDianNao, 1024, 1e6, true);
        let rda_dense = m.evaluate_rda(&sparse, 1024, 1e6, Metric::Latency);
        let rda_gated = m.evaluate_rda_gated(&sparse, 1024, 1e6, Metric::Latency, true);
        let shi_speedup = shi_dense.latency_s / shi_gated.latency_s;
        let rda_speedup = rda_dense.latency_s / rda_gated.latency_s;
        assert!(
            rda_speedup > 1.5 * shi_speedup,
            "rda {rda_speedup} vs shi {shi_speedup}"
        );
    }

    #[test]
    fn density_variants_do_not_share_the_cost_memo() {
        let m = model();
        let dense = conv(64, 64, 28, 3);
        let sparse = dense.clone().with_density(0.5);
        let _ = m.evaluate_gated(&dense, DataflowStyle::Nvdla, 1024, 32.0, true);
        assert_eq!(m.cached_queries(), 1);
        let _ = m.evaluate_gated(&sparse, DataflowStyle::Nvdla, 1024, 32.0, true);
        assert_eq!(
            m.cached_queries(),
            2,
            "sparse variant must be a fresh entry"
        );
        let _ = m.evaluate(&sparse, DataflowStyle::Nvdla, 1024, 32.0);
        assert_eq!(m.cached_queries(), 3, "gating flag must be keyed");
    }

    #[test]
    fn context_change_penalty_is_charged() {
        let cfg = CostModelConfig {
            context_change_cycles: 5000,
            ..Default::default()
        };
        let with_penalty = CostModel::new(cfg);
        let plain = model();
        let layer = conv(64, 64, 28, 3);
        let a = with_penalty.evaluate(&layer, DataflowStyle::Nvdla, 1024, 32.0);
        let b = plain.evaluate(&layer, DataflowStyle::Nvdla, 1024, 32.0);
        assert_eq!(a.total_cycles, b.total_cycles + 5000);
    }
}
