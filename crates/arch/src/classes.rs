//! Hardware budgets for the paper's deployment scenarios (Table IV).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A total hardware budget: the resources Definition 1 partitions across
/// sub-accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareResources {
    /// Total processing elements (`N_PE`).
    pub pes: u32,
    /// Total global NoC bandwidth (`BW_G`), GB/s.
    pub bandwidth_gbps: f64,
    /// Shared global scratchpad capacity, bytes.
    pub global_buffer_bytes: u64,
}

impl HardwareResources {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if any resource is zero.
    pub fn new(pes: u32, bandwidth_gbps: f64, global_buffer_bytes: u64) -> Self {
        assert!(pes > 0, "PE budget must be positive");
        assert!(bandwidth_gbps > 0.0, "bandwidth budget must be positive");
        assert!(global_buffer_bytes > 0, "global buffer must be positive");
        Self {
            pes,
            bandwidth_gbps,
            global_buffer_bytes,
        }
    }
}

/// The three deployment scenarios of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorClass {
    /// 1024 PEs, 16 GB/s, 4 MiB.
    Edge,
    /// 4096 PEs, 64 GB/s, 8 MiB.
    Mobile,
    /// 16384 PEs, 256 GB/s, 16 MiB.
    Cloud,
}

impl AcceleratorClass {
    /// All classes, smallest first.
    pub const ALL: [AcceleratorClass; 3] = [
        AcceleratorClass::Edge,
        AcceleratorClass::Mobile,
        AcceleratorClass::Cloud,
    ];

    /// The Table IV budget for this class.
    pub fn resources(&self) -> HardwareResources {
        const MIB: u64 = 1 << 20;
        match self {
            AcceleratorClass::Edge => HardwareResources::new(1024, 16.0, 4 * MIB),
            AcceleratorClass::Mobile => HardwareResources::new(4096, 64.0, 8 * MIB),
            AcceleratorClass::Cloud => HardwareResources::new(16384, 256.0, 16 * MIB),
        }
    }
}

impl fmt::Display for AcceleratorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorClass::Edge => f.write_str("edge"),
            AcceleratorClass::Mobile => f.write_str("mobile"),
            AcceleratorClass::Cloud => f.write_str("cloud"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_budgets() {
        let edge = AcceleratorClass::Edge.resources();
        assert_eq!(edge.pes, 1024);
        assert_eq!(edge.bandwidth_gbps, 16.0);
        assert_eq!(edge.global_buffer_bytes, 4 << 20);
        let cloud = AcceleratorClass::Cloud.resources();
        assert_eq!(cloud.pes, 16384);
        assert_eq!(cloud.bandwidth_gbps, 256.0);
    }

    #[test]
    fn classes_scale_monotonically() {
        let mut last_pes = 0;
        for class in AcceleratorClass::ALL {
            let r = class.resources();
            assert!(r.pes > last_pes);
            last_pes = r.pes;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pes_rejected() {
        let _ = HardwareResources::new(0, 1.0, 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(AcceleratorClass::Mobile.to_string(), "mobile");
    }
}
