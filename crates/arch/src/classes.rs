//! Hardware budgets for the paper's deployment scenarios (Table IV).

use serde::{Deserialize, Serialize};
use std::fmt;

/// mm² per processing element (MAC + pipeline registers + local register
/// file) in the [`HardwareResources::area_mm2`] proxy. Public so config
/// transforms (e.g. sparsity gating) can price per-PE hardware additions
/// consistently with the base proxy.
pub const PE_MM2: f64 = 0.002;

/// A total hardware budget: the resources Definition 1 partitions across
/// sub-accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareResources {
    /// Total processing elements (`N_PE`).
    pub pes: u32,
    /// Total global NoC bandwidth (`BW_G`), GB/s.
    pub bandwidth_gbps: f64,
    /// Shared global scratchpad capacity, bytes.
    pub global_buffer_bytes: u64,
}

impl HardwareResources {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if any resource is zero.
    pub fn new(pes: u32, bandwidth_gbps: f64, global_buffer_bytes: u64) -> Self {
        assert!(pes > 0, "PE budget must be positive");
        assert!(bandwidth_gbps > 0.0, "bandwidth budget must be positive");
        assert!(global_buffer_bytes > 0, "global buffer must be positive");
        Self {
            pes,
            bandwidth_gbps,
            global_buffer_bytes,
        }
    }

    /// Estimated silicon area of a chip built on this budget, mm².
    ///
    /// A coarse analytical proxy in the spirit of the paper's Table IV
    /// cost discussion, calibrated so an Eyeriss-scale array lands in
    /// the right order of magnitude: PE array (MAC + local register
    /// file), global scratchpad SRAM, and NoC/DRAM interface scaled by
    /// peak bandwidth. The absolute numbers are not process-accurate;
    /// what matters for fleet design-space exploration is that the
    /// proxy is deterministic and monotone in every resource, so area
    /// budgets order candidate chips consistently.
    ///
    /// ```
    /// use herald_arch::AcceleratorClass;
    ///
    /// let edge = AcceleratorClass::Edge.resources();
    /// let cloud = AcceleratorClass::Cloud.resources();
    /// assert!(cloud.area_mm2() > edge.area_mm2());
    /// ```
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        /// mm² per MiB of global scratchpad SRAM.
        const SRAM_MM2_PER_MIB: f64 = 0.5;
        /// mm² per GB/s of global NoC / DRAM interface bandwidth.
        const NOC_MM2_PER_GBPS: f64 = 0.05;
        let mib = self.global_buffer_bytes as f64 / (1u64 << 20) as f64;
        f64::from(self.pes) * PE_MM2
            + mib * SRAM_MM2_PER_MIB
            + self.bandwidth_gbps * NOC_MM2_PER_GBPS
    }
}

/// The three deployment scenarios of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorClass {
    /// 1024 PEs, 16 GB/s, 4 MiB.
    Edge,
    /// 4096 PEs, 64 GB/s, 8 MiB.
    Mobile,
    /// 16384 PEs, 256 GB/s, 16 MiB.
    Cloud,
}

impl AcceleratorClass {
    /// All classes, smallest first.
    pub const ALL: [AcceleratorClass; 3] = [
        AcceleratorClass::Edge,
        AcceleratorClass::Mobile,
        AcceleratorClass::Cloud,
    ];

    /// The Table IV budget for this class.
    pub fn resources(&self) -> HardwareResources {
        const MIB: u64 = 1 << 20;
        match self {
            AcceleratorClass::Edge => HardwareResources::new(1024, 16.0, 4 * MIB),
            AcceleratorClass::Mobile => HardwareResources::new(4096, 64.0, 8 * MIB),
            AcceleratorClass::Cloud => HardwareResources::new(16384, 256.0, 16 * MIB),
        }
    }
}

impl fmt::Display for AcceleratorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorClass::Edge => f.write_str("edge"),
            AcceleratorClass::Mobile => f.write_str("mobile"),
            AcceleratorClass::Cloud => f.write_str("cloud"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_budgets() {
        let edge = AcceleratorClass::Edge.resources();
        assert_eq!(edge.pes, 1024);
        assert_eq!(edge.bandwidth_gbps, 16.0);
        assert_eq!(edge.global_buffer_bytes, 4 << 20);
        let cloud = AcceleratorClass::Cloud.resources();
        assert_eq!(cloud.pes, 16384);
        assert_eq!(cloud.bandwidth_gbps, 256.0);
    }

    #[test]
    fn classes_scale_monotonically() {
        let mut last_pes = 0;
        for class in AcceleratorClass::ALL {
            let r = class.resources();
            assert!(r.pes > last_pes);
            last_pes = r.pes;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pes_rejected() {
        let _ = HardwareResources::new(0, 1.0, 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(AcceleratorClass::Mobile.to_string(), "mobile");
    }

    #[test]
    fn area_proxy_is_positive_and_monotone() {
        let mut last = 0.0;
        for class in AcceleratorClass::ALL {
            let area = class.resources().area_mm2();
            assert!(area > last, "{class}: {area} vs {last}");
            last = area;
        }
        // Monotone in each resource independently.
        let base = HardwareResources::new(1024, 16.0, 4 << 20);
        assert!(HardwareResources::new(2048, 16.0, 4 << 20).area_mm2() > base.area_mm2());
        assert!(HardwareResources::new(1024, 32.0, 4 << 20).area_mm2() > base.area_mm2());
        assert!(HardwareResources::new(1024, 16.0, 8 << 20).area_mm2() > base.area_mm2());
    }

    #[test]
    fn edge_area_matches_the_documented_constants() {
        // 1024 PEs * 0.002 + 4 MiB * 0.5 + 16 GB/s * 0.05.
        let edge = AcceleratorClass::Edge.resources().area_mm2();
        assert!((edge - (2.048 + 2.0 + 0.8)).abs() < 1e-12, "{edge}");
    }
}
