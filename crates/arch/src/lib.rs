//! Accelerator taxonomy for the Herald HDA framework.
//!
//! This crate encodes the accelerator classes the paper evaluates
//! (Fig. 3, Tables III and IV):
//!
//! * **FDA** — fixed dataflow accelerator: one monolithic array, one
//!   dataflow ([`AcceleratorConfig::fda`]).
//! * **SM-FDA** — scaled-out multi-FDA: several identical sub-accelerators
//!   running the *same* dataflow with evenly split resources
//!   ([`AcceleratorConfig::sm_fda`]).
//! * **RDA** — reconfigurable dataflow accelerator (MAERI-style): one
//!   monolithic array that adopts the best dataflow per layer, paying
//!   reconfiguration hardware taxes ([`AcceleratorConfig::rda`]).
//! * **HDA** — heterogeneous dataflow accelerator (this paper's proposal):
//!   several sub-accelerators, each a different fixed dataflow, sharing the
//!   global buffer and a hard-partitioned global NoC
//!   ([`AcceleratorConfig::hda`], [`AcceleratorConfig::maelstrom`]).
//!
//! Hardware budgets for the edge / mobile / cloud scenarios of Table IV
//! come from [`AcceleratorClass`].
//!
//! # Example
//!
//! ```
//! use herald_arch::{AcceleratorClass, AcceleratorConfig, Partition};
//! use herald_dataflow::DataflowStyle;
//!
//! let res = AcceleratorClass::Edge.resources();
//! let maelstrom = AcceleratorConfig::maelstrom(
//!     res,
//!     Partition::new(vec![128, 896], vec![4.0, 12.0]).unwrap(),
//! ).unwrap();
//! assert_eq!(maelstrom.sub_accelerators().len(), 2);
//! assert_eq!(maelstrom.total_pes(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classes;
mod config;
mod partition;
mod subacc;

pub use classes::{AcceleratorClass, HardwareResources, PE_MM2};
pub use config::{AcceleratorConfig, AcceleratorStyle, ConfigError, SPARSE_GATING_AREA_OVERHEAD};
pub use partition::Partition;
pub use subacc::SubAccelerator;
