//! Full accelerator configurations: FDA, SM-FDA, RDA and HDA.

use crate::{classes::PE_MM2, HardwareResources, Partition, SubAccelerator};
use herald_dataflow::DataflowStyle;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The accelerator taxonomy of the paper's Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AcceleratorStyle {
    /// Fixed dataflow accelerator: one monolithic array, one dataflow.
    Fda(DataflowStyle),
    /// Scaled-out multi-FDA [Baek et al., ISCA 2020]: `ways` identical
    /// sub-accelerators running the same dataflow on evenly split
    /// resources.
    ScaledOutMultiFda {
        /// The shared dataflow style.
        style: DataflowStyle,
        /// Number of identical sub-accelerators.
        ways: usize,
    },
    /// Reconfigurable dataflow accelerator (MAERI-style): one monolithic
    /// array adopting the best dataflow per layer.
    Rda,
    /// Heterogeneous dataflow accelerator: one sub-accelerator per listed
    /// style, resources set by an explicit [`Partition`].
    Hda(Vec<DataflowStyle>),
}

impl fmt::Display for AcceleratorStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorStyle::Fda(s) => write!(f, "FDA({s})"),
            AcceleratorStyle::ScaledOutMultiFda { style, ways } => {
                write!(f, "SM-FDA({style} x{ways})")
            }
            AcceleratorStyle::Rda => f.write_str("RDA"),
            AcceleratorStyle::Hda(styles) => {
                let names: Vec<&str> = styles.iter().map(|s| s.label()).collect();
                write!(f, "HDA({})", names.join("+"))
            }
        }
    }
}

/// Errors constructing an [`AcceleratorConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Partition width does not match the number of dataflow styles.
    PartitionMismatch {
        /// Styles requested.
        styles: usize,
        /// Partition ways provided.
        ways: usize,
    },
    /// Partition totals exceed the hardware budget.
    BudgetExceeded(String),
    /// An HDA needs at least two sub-accelerators.
    TooFewSubAccelerators,
    /// Invalid partition contents.
    InvalidPartition(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::PartitionMismatch { styles, ways } => {
                write!(f, "{styles} dataflow styles but {ways} partition ways")
            }
            ConfigError::BudgetExceeded(msg) => write!(f, "budget exceeded: {msg}"),
            ConfigError::TooFewSubAccelerators => {
                f.write_str("an HDA needs at least two sub-accelerators")
            }
            ConfigError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
        }
    }
}

impl Error for ConfigError {}

/// A complete accelerator: sub-accelerators plus the shared global buffer.
///
/// # Example
///
/// ```
/// use herald_arch::{AcceleratorClass, AcceleratorConfig};
/// use herald_dataflow::DataflowStyle;
///
/// let res = AcceleratorClass::Mobile.resources();
/// let fda = AcceleratorConfig::fda(DataflowStyle::Nvdla, res);
/// assert_eq!(fda.sub_accelerators().len(), 1);
/// assert_eq!(fda.total_pes(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    name: String,
    style: AcceleratorStyle,
    subs: Vec<SubAccelerator>,
    global_buffer_bytes: u64,
}

impl AcceleratorConfig {
    /// A monolithic fixed-dataflow accelerator holding the whole budget.
    pub fn fda(style: DataflowStyle, res: HardwareResources) -> Self {
        Self {
            name: format!("FDA-{style}"),
            style: AcceleratorStyle::Fda(style),
            subs: vec![SubAccelerator::fixed(
                "acc0",
                style,
                res.pes,
                res.bandwidth_gbps,
            )],
            global_buffer_bytes: res.global_buffer_bytes,
        }
    }

    /// A monolithic MAERI-style reconfigurable accelerator.
    pub fn rda(res: HardwareResources) -> Self {
        Self {
            name: "RDA-MAERI".into(),
            style: AcceleratorStyle::Rda,
            subs: vec![SubAccelerator::reconfigurable(
                "acc0",
                res.pes,
                res.bandwidth_gbps,
            )],
            global_buffer_bytes: res.global_buffer_bytes,
        }
    }

    /// A scaled-out multi-FDA: `ways` copies of the same dataflow on an
    /// even split (the paper's SM-FDA baseline, their reference 24).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooFewSubAccelerators`] for `ways < 2`.
    pub fn sm_fda(
        style: DataflowStyle,
        ways: usize,
        res: HardwareResources,
    ) -> Result<Self, ConfigError> {
        if ways < 2 {
            return Err(ConfigError::TooFewSubAccelerators);
        }
        let part = Partition::even(ways, res.pes, res.bandwidth_gbps);
        let subs = part
            .pes()
            .iter()
            .zip(part.bandwidth_gbps())
            .enumerate()
            .map(|(i, (&pes, &bw))| SubAccelerator::fixed(format!("acc{i}"), style, pes, bw))
            .collect();
        Ok(Self {
            name: format!("SM-FDA-{style}x{ways}"),
            style: AcceleratorStyle::ScaledOutMultiFda { style, ways },
            subs,
            global_buffer_bytes: res.global_buffer_bytes,
        })
    }

    /// A heterogeneous dataflow accelerator: one sub-accelerator per style
    /// with resources from `partition` (Definition 1).
    ///
    /// # Errors
    ///
    /// Rejects mismatched partition widths, single-way HDAs and partitions
    /// exceeding the budget.
    pub fn hda(
        styles: &[DataflowStyle],
        res: HardwareResources,
        partition: Partition,
    ) -> Result<Self, ConfigError> {
        if styles.len() < 2 {
            return Err(ConfigError::TooFewSubAccelerators);
        }
        if styles.len() != partition.ways() {
            return Err(ConfigError::PartitionMismatch {
                styles: styles.len(),
                ways: partition.ways(),
            });
        }
        if partition.total_pes() > res.pes {
            return Err(ConfigError::BudgetExceeded(format!(
                "{} PEs partitioned, {} available",
                partition.total_pes(),
                res.pes
            )));
        }
        if partition.total_bandwidth_gbps() > res.bandwidth_gbps * (1.0 + 1e-9) {
            return Err(ConfigError::BudgetExceeded(format!(
                "{} GB/s partitioned, {} available",
                partition.total_bandwidth_gbps(),
                res.bandwidth_gbps
            )));
        }
        let subs = styles
            .iter()
            .zip(partition.pes().iter().zip(partition.bandwidth_gbps()))
            .enumerate()
            .map(|(i, (&style, (&pes, &bw)))| {
                SubAccelerator::fixed(format!("acc{i}-{style}"), style, pes, bw)
            })
            .collect();
        let names: Vec<&str> = styles.iter().map(|s| s.label()).collect();
        Ok(Self {
            name: format!("HDA-{}", names.join("+")),
            style: AcceleratorStyle::Hda(styles.to_vec()),
            subs,
            global_buffer_bytes: res.global_buffer_bytes,
        })
    }

    /// The paper's flagship HDA, **Maelstrom**: NVDLA-style plus
    /// Shi-diannao-style sub-accelerators.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AcceleratorConfig::hda`].
    pub fn maelstrom(res: HardwareResources, partition: Partition) -> Result<Self, ConfigError> {
        let mut cfg = Self::hda(
            &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
            res,
            partition,
        )?;
        cfg.name = "Maelstrom".into();
        Ok(cfg)
    }

    /// Equips every sub-accelerator with sparsity-gating hardware and
    /// prefixes the name with `Sparse-`. Gated arrays skip a
    /// dataflow-class-dependent share of a sparse layer's zero work at a
    /// [`SPARSE_GATING_AREA_OVERHEAD`] area premium on their PE arrays;
    /// dense layers cost exactly the same as on the ungated design.
    #[must_use]
    pub fn with_sparse_gating(mut self) -> Self {
        self.subs = self
            .subs
            .into_iter()
            .map(SubAccelerator::with_sparse_gating)
            .collect();
        self.name = format!("Sparse-{}", self.name);
        self
    }

    /// [`AcceleratorConfig::maelstrom`] with sparsity gating on both
    /// sub-accelerators — the sparse-friendly flagship of the menu.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AcceleratorConfig::hda`].
    pub fn sparse_maelstrom(
        res: HardwareResources,
        partition: Partition,
    ) -> Result<Self, ConfigError> {
        Ok(Self::maelstrom(res, partition)?.with_sparse_gating())
    }

    /// A monolithic reconfigurable array with sparsity gating: the
    /// flexible fabric that recovers the most zero work (MAERI-class
    /// sparse accelerator).
    pub fn sparse_rda(res: HardwareResources) -> Self {
        Self::rda(res).with_sparse_gating()
    }

    /// The configuration's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The taxonomy entry this configuration instantiates.
    pub fn style(&self) -> &AcceleratorStyle {
        &self.style
    }

    /// The sub-accelerators.
    pub fn sub_accelerators(&self) -> &[SubAccelerator] {
        &self.subs
    }

    /// Shared global buffer capacity in bytes.
    pub fn global_buffer_bytes(&self) -> u64 {
        self.global_buffer_bytes
    }

    /// Total PEs across sub-accelerators.
    pub fn total_pes(&self) -> u32 {
        self.subs.iter().map(SubAccelerator::pes).sum()
    }

    /// Total bandwidth across sub-accelerators, GB/s.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.subs.iter().map(SubAccelerator::bandwidth_gbps).sum()
    }

    /// Estimated silicon area of this chip, mm²: the
    /// [`HardwareResources::area_mm2`] proxy applied to its total PE,
    /// bandwidth and global-buffer provisioning. Partitioning a budget
    /// across sub-accelerators does not change the total, so every
    /// design over the same class budget costs the same area — area
    /// differences come from provisioning differently-sized chips,
    /// which is exactly the axis fleet-composition search trades
    /// against throughput and latency.
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let base = HardwareResources {
            pes: self.total_pes(),
            bandwidth_gbps: self.total_bandwidth_gbps(),
            global_buffer_bytes: self.global_buffer_bytes,
        }
        .area_mm2();
        // Sparsity-gating hardware (zero-detect logic, compressed-operand
        // decoders) grows each gated PE array; ungated designs are
        // untouched, keeping all pre-sparsity areas bit-identical.
        let gated_pes: u32 = self
            .subs
            .iter()
            .filter(|s| s.has_sparse_gating())
            .map(SubAccelerator::pes)
            .sum();
        if gated_pes == 0 {
            base
        } else {
            base + f64::from(gated_pes) * PE_MM2 * SPARSE_GATING_AREA_OVERHEAD
        }
    }
}

/// Relative area premium of sparsity-gating hardware per gated PE, applied
/// on top of [`PE_MM2`] in [`AcceleratorConfig::area_mm2`].
pub const SPARSE_GATING_AREA_OVERHEAD: f64 = 0.25;

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} sub-accelerators, {} PEs, {:.0} GB/s)",
            self.name,
            self.subs.len(),
            self.total_pes(),
            self.total_bandwidth_gbps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorClass;

    fn res() -> HardwareResources {
        AcceleratorClass::Edge.resources()
    }

    #[test]
    fn fda_holds_entire_budget() {
        let cfg = AcceleratorConfig::fda(DataflowStyle::Eyeriss, res());
        assert_eq!(cfg.total_pes(), 1024);
        assert_eq!(cfg.sub_accelerators().len(), 1);
        assert!(!cfg.sub_accelerators()[0].is_reconfigurable());
    }

    #[test]
    fn rda_is_monolithic_and_reconfigurable() {
        let cfg = AcceleratorConfig::rda(res());
        assert_eq!(cfg.sub_accelerators().len(), 1);
        assert!(cfg.sub_accelerators()[0].is_reconfigurable());
    }

    #[test]
    fn sm_fda_splits_evenly() {
        let cfg = AcceleratorConfig::sm_fda(DataflowStyle::Nvdla, 2, res()).unwrap();
        assert_eq!(cfg.total_pes(), 1024);
        assert_eq!(cfg.sub_accelerators()[0].pes(), 512);
        assert_eq!(cfg.sub_accelerators()[1].pes(), 512);
        assert_eq!(
            cfg.sub_accelerators()[0].style(),
            cfg.sub_accelerators()[1].style()
        );
    }

    #[test]
    fn sm_fda_needs_two_ways() {
        assert_eq!(
            AcceleratorConfig::sm_fda(DataflowStyle::Nvdla, 1, res()).unwrap_err(),
            ConfigError::TooFewSubAccelerators
        );
    }

    #[test]
    fn hda_respects_partition() {
        let p = Partition::new(vec![128, 896], vec![4.0, 12.0]).unwrap();
        let cfg = AcceleratorConfig::maelstrom(res(), p).unwrap();
        assert_eq!(cfg.name(), "Maelstrom");
        assert_eq!(cfg.sub_accelerators()[0].style(), DataflowStyle::Nvdla);
        assert_eq!(cfg.sub_accelerators()[1].pes(), 896);
    }

    #[test]
    fn hda_rejects_over_budget_partitions() {
        let p = Partition::new(vec![1024, 896], vec![4.0, 12.0]).unwrap();
        assert!(matches!(
            AcceleratorConfig::maelstrom(res(), p),
            Err(ConfigError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn hda_rejects_width_mismatch() {
        let p = Partition::new(vec![512, 256, 256], vec![4.0, 4.0, 8.0]).unwrap();
        assert!(matches!(
            AcceleratorConfig::hda(&[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao], res(), p),
            Err(ConfigError::PartitionMismatch { .. })
        ));
    }

    #[test]
    fn three_way_hda_builds() {
        let p = Partition::even(3, 1024, 16.0);
        let cfg = AcceleratorConfig::hda(
            &[
                DataflowStyle::Nvdla,
                DataflowStyle::ShiDianNao,
                DataflowStyle::Eyeriss,
            ],
            res(),
            p,
        )
        .unwrap();
        assert_eq!(cfg.sub_accelerators().len(), 3);
    }

    #[test]
    fn style_displays_match_taxonomy() {
        assert_eq!(
            AcceleratorStyle::Fda(DataflowStyle::Nvdla).to_string(),
            "FDA(NVDLA)"
        );
        assert_eq!(AcceleratorStyle::Rda.to_string(), "RDA");
        let hda = AcceleratorStyle::Hda(vec![DataflowStyle::Nvdla, DataflowStyle::ShiDianNao]);
        assert_eq!(hda.to_string(), "HDA(NVDLA+Shi-diannao)");
    }

    #[test]
    fn errors_are_displayable() {
        let e = ConfigError::PartitionMismatch { styles: 2, ways: 3 };
        assert!(e.to_string().contains("2 dataflow styles"));
    }

    #[test]
    fn sparse_gating_gates_every_sub_and_renames() {
        let p = Partition::new(vec![128, 896], vec![4.0, 12.0]).unwrap();
        let cfg = AcceleratorConfig::sparse_maelstrom(res(), p).unwrap();
        assert_eq!(cfg.name(), "Sparse-Maelstrom");
        assert!(cfg
            .sub_accelerators()
            .iter()
            .all(SubAccelerator::has_sparse_gating));
        let rda = AcceleratorConfig::sparse_rda(res());
        assert!(rda.name().starts_with("Sparse-"));
        assert!(rda.sub_accelerators()[0].has_sparse_gating());
    }

    #[test]
    fn sparse_gating_pays_an_area_premium() {
        let dense = AcceleratorConfig::fda(DataflowStyle::Nvdla, res());
        let sparse = dense.clone().with_sparse_gating();
        let expected = dense.area_mm2()
            + f64::from(dense.total_pes()) * crate::PE_MM2 * SPARSE_GATING_AREA_OVERHEAD;
        assert!((sparse.area_mm2() - expected).abs() < 1e-12);
        assert!(sparse.area_mm2() > dense.area_mm2());
    }

    #[test]
    fn area_is_partition_invariant_over_one_budget() {
        // Every design over the same class budget costs the same area;
        // a smaller chip costs less.
        let fda = AcceleratorConfig::fda(DataflowStyle::Nvdla, res());
        let hda = AcceleratorConfig::hda(
            &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
            res(),
            Partition::even(2, 1024, 16.0),
        )
        .unwrap();
        assert!((fda.area_mm2() - res().area_mm2()).abs() < 1e-12);
        assert!((hda.area_mm2() - fda.area_mm2()).abs() < 1e-12);
        let small = HardwareResources::new(512, 8.0, 2 << 20);
        assert!(AcceleratorConfig::fda(DataflowStyle::Nvdla, small).area_mm2() < fda.area_mm2());
    }
}
