//! Hardware resource partitions across sub-accelerators (Definition 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware resource split across `n` sub-accelerators: per-sub PE counts
/// and per-sub global-NoC bandwidths. Together with the dataflow style list
/// this fully specifies an HDA per the paper's Definition 1.
///
/// # Example
///
/// ```
/// use herald_arch::Partition;
///
/// // The paper's Table V AR/VR-A edge Maelstrom point.
/// let p = Partition::new(vec![128, 896], vec![4.0, 12.0]).unwrap();
/// assert_eq!(p.total_pes(), 1024);
/// assert_eq!(p.total_bandwidth_gbps(), 16.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    pes: Vec<u32>,
    bandwidth_gbps: Vec<f64>,
}

impl Partition {
    /// Creates a partition.
    ///
    /// # Errors
    ///
    /// Returns a message if the vectors are empty, differ in length, or
    /// contain zero/negative allocations.
    pub fn new(pes: Vec<u32>, bandwidth_gbps: Vec<f64>) -> Result<Self, String> {
        if pes.is_empty() {
            return Err("partition must cover at least one sub-accelerator".into());
        }
        if pes.len() != bandwidth_gbps.len() {
            return Err(format!(
                "PE split has {} entries but bandwidth split has {}",
                pes.len(),
                bandwidth_gbps.len()
            ));
        }
        if pes.contains(&0) {
            return Err("every sub-accelerator needs at least one PE".into());
        }
        if bandwidth_gbps.iter().any(|&b| b <= 0.0) {
            return Err("every sub-accelerator needs positive bandwidth".into());
        }
        Ok(Self {
            pes,
            bandwidth_gbps,
        })
    }

    /// An even split of `total_pes` and `total_bw` across `ways`
    /// sub-accelerators (remainders go to the first sub-accelerator) — the
    /// SM-FDA configuration and the naive HDA baseline of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `total_pes`.
    pub fn even(ways: usize, total_pes: u32, total_bw: f64) -> Self {
        assert!(ways > 0, "need at least one way");
        assert!(ways as u32 <= total_pes, "more sub-accelerators than PEs");
        let base = total_pes / ways as u32;
        let mut pes = vec![base; ways];
        pes[0] += total_pes - base * ways as u32;
        let bw = vec![total_bw / ways as f64; ways];
        Self {
            pes,
            bandwidth_gbps: bw,
        }
    }

    /// Number of sub-accelerators.
    pub fn ways(&self) -> usize {
        self.pes.len()
    }

    /// Per-sub-accelerator PE counts.
    pub fn pes(&self) -> &[u32] {
        &self.pes
    }

    /// Per-sub-accelerator bandwidths (GB/s).
    pub fn bandwidth_gbps(&self) -> &[f64] {
        &self.bandwidth_gbps
    }

    /// Sum of PE allocations.
    pub fn total_pes(&self) -> u32 {
        self.pes.iter().sum()
    }

    /// Sum of bandwidth allocations.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps.iter().sum()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pes: Vec<String> = self.pes.iter().map(u32::to_string).collect();
        let bw: Vec<String> = self
            .bandwidth_gbps
            .iter()
            .map(|b| format!("{b:.0}"))
            .collect();
        write!(f, "PEs [{}], BW [{}] GB/s", pes.join("/"), bw.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_conserves_totals() {
        let p = Partition::even(3, 1024, 16.0);
        assert_eq!(p.total_pes(), 1024);
        assert!((p.total_bandwidth_gbps() - 16.0).abs() < 1e-9);
        // Remainder (1024 = 3*341 + 1) lands on the first way.
        assert_eq!(p.pes(), &[342, 341, 341]);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(Partition::new(vec![1, 2], vec![1.0]).is_err());
    }

    #[test]
    fn zero_pe_way_rejected() {
        assert!(Partition::new(vec![0, 2], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn nonpositive_bandwidth_rejected() {
        assert!(Partition::new(vec![1, 2], vec![1.0, 0.0]).is_err());
    }

    #[test]
    fn empty_partition_rejected() {
        assert!(Partition::new(vec![], vec![]).is_err());
    }

    #[test]
    fn display_is_compact() {
        let p = Partition::new(vec![128, 896], vec![4.0, 12.0]).unwrap();
        assert_eq!(p.to_string(), "PEs [128/896], BW [4/12] GB/s");
    }
}
