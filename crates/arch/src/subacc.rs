//! A single sub-accelerator: one fixed- (or reconfigurable-) dataflow array.

use herald_cost::{CostModel, LayerCost, Metric};
use herald_dataflow::DataflowStyle;
use herald_models::Layer;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One sub-accelerator of an accelerator configuration: a PE array with a
/// dataflow style and a hard-partitioned share of the global NoC.
///
/// A monolithic FDA or RDA is simply a configuration with a single
/// sub-accelerator holding all resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubAccelerator {
    name: String,
    style: DataflowStyle,
    pes: u32,
    bandwidth_gbps: f64,
    reconfigurable: bool,
    #[serde(default)]
    sparse_gating: bool,
}

impl SubAccelerator {
    /// Creates a fixed-dataflow sub-accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero or `bandwidth_gbps` is not positive.
    pub fn fixed(
        name: impl Into<String>,
        style: DataflowStyle,
        pes: u32,
        bandwidth_gbps: f64,
    ) -> Self {
        assert!(pes > 0, "sub-accelerator needs PEs");
        assert!(bandwidth_gbps > 0.0, "sub-accelerator needs bandwidth");
        Self {
            name: name.into(),
            style,
            pes,
            bandwidth_gbps,
            reconfigurable: false,
            sparse_gating: false,
        }
    }

    /// Creates a reconfigurable (MAERI-style) sub-accelerator that adopts
    /// the best dataflow per layer at a reconfiguration cost.
    pub fn reconfigurable(name: impl Into<String>, pes: u32, bandwidth_gbps: f64) -> Self {
        let mut s = Self::fixed(name, DataflowStyle::Nvdla, pes, bandwidth_gbps);
        s.reconfigurable = true;
        s
    }

    /// Equips this array with sparsity-gating hardware (zero-skip logic
    /// and compressed weight delivery), letting sparse layers skip a
    /// dataflow-class-dependent fraction of their zero work. Dense layers
    /// cost exactly the same with or without gating.
    #[must_use]
    pub fn with_sparse_gating(mut self) -> Self {
        self.sparse_gating = true;
        self
    }

    /// The sub-accelerator's name (unique within its configuration).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataflow style (for reconfigurable arrays this is only the
    /// default; each layer picks its own).
    pub fn style(&self) -> DataflowStyle {
        self.style
    }

    /// PE count.
    pub fn pes(&self) -> u32 {
        self.pes
    }

    /// Global-NoC bandwidth share, GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Whether this array reconfigures its dataflow per layer.
    pub fn is_reconfigurable(&self) -> bool {
        self.reconfigurable
    }

    /// Whether this array has sparsity-gating hardware.
    pub fn has_sparse_gating(&self) -> bool {
        self.sparse_gating
    }

    /// The cost of running `layer` on this sub-accelerator: the fixed
    /// style's cost, or the best style with reconfiguration taxes for
    /// reconfigurable arrays. Sparsity-gated arrays skip part of a sparse
    /// layer's zero work.
    pub fn layer_cost(&self, cost: &CostModel, layer: &Layer, metric: Metric) -> LayerCost {
        if self.reconfigurable {
            cost.evaluate_rda_gated(
                layer,
                self.pes,
                self.bandwidth_gbps,
                metric,
                self.sparse_gating,
            )
        } else {
            cost.evaluate_gated(
                layer,
                self.style,
                self.pes,
                self.bandwidth_gbps,
                self.sparse_gating,
            )
        }
    }
}

impl fmt::Display for SubAccelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}{}{}] {} PEs, {:.0} GB/s",
            self.name,
            if self.reconfigurable { "RDA:" } else { "" },
            self.style,
            if self.sparse_gating { "+SP" } else { "" },
            self.pes,
            self.bandwidth_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_models::{LayerDims, LayerOp};

    fn layer() -> Layer {
        Layer::new(
            "l",
            LayerOp::Conv2d,
            LayerDims::conv(512, 512, 7, 7, 3, 3).with_pad(1),
        )
    }

    #[test]
    fn fixed_sub_uses_its_style() {
        let cost = CostModel::default();
        let sub = SubAccelerator::fixed("acc1", DataflowStyle::ShiDianNao, 1024, 16.0);
        let c = sub.layer_cost(&cost, &layer(), Metric::Edp);
        assert_eq!(c.style, DataflowStyle::ShiDianNao);
        assert_eq!(c.energy.reconfig_j, 0.0);
    }

    #[test]
    fn reconfigurable_sub_picks_best_style() {
        let cost = CostModel::default();
        let sub = SubAccelerator::reconfigurable("rda", 1024, 16.0);
        // Deep-channel layer: the RDA should configure NVDLA-style.
        let c = sub.layer_cost(&cost, &layer(), Metric::Edp);
        assert_eq!(c.style, DataflowStyle::Nvdla);
        assert!(c.energy.reconfig_j > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs PEs")]
    fn zero_pes_rejected() {
        let _ = SubAccelerator::fixed("x", DataflowStyle::Nvdla, 0, 1.0);
    }

    #[test]
    fn display_marks_reconfigurable_arrays() {
        let sub = SubAccelerator::reconfigurable("rda", 64, 1.0);
        assert!(sub.to_string().contains("RDA:"));
    }

    #[test]
    fn gated_sub_discounts_sparse_layers_only() {
        let cost = CostModel::default();
        let plain = SubAccelerator::fixed("acc", DataflowStyle::Nvdla, 1024, 16.0);
        let gated = plain.clone().with_sparse_gating();
        assert!(gated.has_sparse_gating() && !plain.has_sparse_gating());
        // Dense layer: identical cost.
        let dense = layer();
        assert_eq!(
            plain.layer_cost(&cost, &dense, Metric::Edp),
            gated.layer_cost(&cost, &dense, Metric::Edp)
        );
        // Sparse layer: the gated array wins.
        let sparse = dense.with_density(0.3);
        let cp = plain.layer_cost(&cost, &sparse, Metric::Edp);
        let cg = gated.layer_cost(&cost, &sparse, Metric::Edp);
        assert!(cg.energy_j() < cp.energy_j());
        assert!(cg.total_cycles <= cp.total_cycles);
    }

    #[test]
    fn display_marks_gated_arrays() {
        let sub = SubAccelerator::fixed("s", DataflowStyle::Nvdla, 64, 1.0).with_sparse_gating();
        assert!(sub.to_string().contains("+SP"));
    }

    #[test]
    fn gated_flag_survives_serde_and_defaults_off() {
        let sub = SubAccelerator::reconfigurable("rda", 64, 1.0).with_sparse_gating();
        let json = serde_json::to_string(&sub).unwrap();
        let back: SubAccelerator = serde_json::from_str(&json).unwrap();
        assert_eq!(sub, back);
        // Pre-gating serialized forms (no `sparse_gating` field)
        // deserialize to ungated.
        let plain = SubAccelerator::fixed("a", DataflowStyle::Nvdla, 64, 1.0);
        let full = serde_json::to_string(&plain).unwrap();
        let legacy = full.replace(",\"sparse_gating\":false", "");
        assert_ne!(legacy, full, "expected the field to be serialized");
        let old: SubAccelerator = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old, plain);
    }
}
