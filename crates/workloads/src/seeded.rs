//! Deterministic seeded-stream sampling shared by every arrival-time
//! generator in the workspace.
//!
//! Before this module existed each seeded generator hand-rolled its own
//! SplitMix64 stream: the DSE random search, the streaming engine's
//! Poisson arrival sampler and the `poisson_mix_stream` scenario each
//! re-implemented seeding (and the scenario derived its second stream's
//! seed with an inline golden-ratio multiply). This module is the single
//! home of that machinery:
//!
//! * [`SplitMix64`] — the PRNG itself (`herald_core::rng` re-exports it,
//!   so the DSE keeps its historical path);
//! * [`derive_seed`] — one documented rule for decorrelating the streams
//!   of a multi-tenant scenario while staying a pure function of the
//!   caller's seed;
//! * [`exponential_gap`] / [`poisson_arrival_times`] /
//!   [`arrival_times`] — the arrival-time samplers the streaming engine
//!   and the fleet dispatcher both consume, so a frame generated on the
//!   dispatch path is bit-for-bit the frame the per-chip simulator
//!   replays.
//!
//! Every function here is deterministic: equal seeds give equal byte
//! streams on every platform, which is what makes scenarios, golden
//! files and fleet simulations reproducible.

use crate::ArrivalProcess;

/// SplitMix64: 64 bits of state, one multiply-xorshift output round
/// (Steele, Lea & Flood, OOPSLA 2014 — the seeding generator of
/// `java.util.SplittableRandom` and of xoshiro). The build environment
/// cannot fetch the `rand` crate; this vendored generator is all the
/// workspace needs for reproducible uniform sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `lo..hi` (half-open; `hi > lo`).
    ///
    /// Uses rejection sampling over the smallest covering power of two,
    /// so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`hi <= lo`).
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        let mask = span.next_power_of_two().wrapping_sub(1);
        loop {
            let candidate = self.next_u64() & mask;
            if candidate < span {
                return lo + candidate as usize;
            }
        }
    }

    /// A uniform sample from `(0, 1]`: 53 uniform bits shifted into the
    /// unit interval, never exactly zero (so `ln` stays finite).
    pub fn gen_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / 9_007_199_254_740_992.0
    }
}

/// Derives the seed of sub-stream `index` from a caller-provided base
/// seed: index 0 *is* the base seed, later indices decorrelate via a
/// golden-ratio multiply. This is the exact rule `poisson_mix_stream`
/// has always used for its second tenant, promoted to the one shared
/// definition so every multi-tenant generator produces the same streams
/// it did before the extraction.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        base
    } else {
        base.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index)
    }
}

/// A deterministic exponential inter-arrival gap with mean `1 / rate`.
pub fn exponential_gap(rng: &mut SplitMix64, rate: f64) -> f64 {
    -rng.gen_unit().ln() / rate
}

/// The arrival times of a seeded Poisson stream with mean rate
/// `mean_fps`, in `[0, horizon_s)` — the exact sampler the streaming
/// engine has always used, so seeds keep producing the same traces.
#[must_use]
pub fn poisson_arrival_times(mean_fps: f64, seed: u64, horizon_s: f64) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut times = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += exponential_gap(&mut rng, mean_fps);
        if t >= horizon_s {
            break;
        }
        times.push(t);
    }
    times
}

/// Every arrival time of one stream in `[0, horizon_s)`, in increasing
/// order: the single definition of "which frames exist" shared by the
/// single-chip streaming engine and the fleet dispatcher.
#[must_use]
pub fn arrival_times(arrival: &ArrivalProcess, horizon_s: f64) -> Vec<f64> {
    match *arrival {
        ArrivalProcess::Periodic { fps } => {
            let mut times = Vec::new();
            let mut seq = 0usize;
            loop {
                let t = seq as f64 / fps;
                if t >= horizon_s {
                    break;
                }
                times.push(t);
                seq += 1;
            }
            times
        }
        ArrivalProcess::Poisson { mean_fps, seed } => {
            poisson_arrival_times(mean_fps, seed, horizon_s)
        }
        ArrivalProcess::OneShot => vec![0.0],
        ArrivalProcess::Trace { ref times_s } => {
            times_s.iter().copied().filter(|t| *t < horizon_s).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_respected_and_covered() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = rng.gen_range(10, 15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn known_vector_matches_reference() {
        // First outputs of Vigna's reference splitmix64.c with seed 0 —
        // these catch any mis-transcribed multiplier/shift constant,
        // which seed-determinism tests alone cannot.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn unit_samples_stay_in_half_open_interval() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_unit();
            assert!(u > 0.0 && u <= 1.0, "{u}");
        }
    }

    #[test]
    fn derive_seed_matches_the_historical_inline_rule() {
        // Index 0 is the base seed (poisson_mix_stream's camera stream);
        // index 1 reproduces the inline golden-ratio derivation its
        // analytics stream has always used. Changing this breaks every
        // committed trace.
        assert_eq!(derive_seed(9, 0), 9);
        assert_eq!(
            derive_seed(9, 1),
            9u64.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)
        );
        assert_eq!(derive_seed(9, 1), 0x8FF3_4785_799E_5CBE);
        // Distinct indices decorrelate.
        assert_ne!(derive_seed(9, 1), derive_seed(9, 2));
    }

    #[test]
    fn periodic_times_are_exact_quotients() {
        let times = arrival_times(&ArrivalProcess::Periodic { fps: 50.0 }, 0.1);
        assert_eq!(times.len(), 5);
        for (seq, t) in times.iter().enumerate() {
            assert_eq!(t.to_bits(), (seq as f64 / 50.0).to_bits());
        }
    }

    #[test]
    fn one_shot_is_a_single_frame_at_zero() {
        assert_eq!(arrival_times(&ArrivalProcess::OneShot, 5.0), vec![0.0]);
    }

    #[test]
    fn trace_times_are_clipped_to_the_horizon() {
        let arrival = ArrivalProcess::Trace {
            times_s: vec![0.0, 0.5, 1.0, 2.5],
        };
        assert_eq!(arrival_times(&arrival, 1.5), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn poisson_times_are_seeded_and_increasing() {
        let a = poisson_arrival_times(40.0, 1, 0.5);
        let b = poisson_arrival_times(40.0, 1, 0.5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_ne!(a, poisson_arrival_times(40.0, 2, 0.5));
    }

    #[test]
    fn poisson_trace_bytes_are_pinned() {
        // Bit-exact pin of the sampler the PR 2/3 scenarios were
        // recorded with: first arrivals of the (30 fps, seed 9) stream
        // `poisson_mix_stream` uses for its camera tenant. If this test
        // fails, every committed trace and golden file silently changed.
        let times = poisson_arrival_times(30.0, 9, 1.0);
        let bits: Vec<u64> = times.iter().take(3).map(|t| t.to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                0x3f8a_1752_8861_50ab,
                0x3f96_d55f_878b_0b36,
                0x3fb1_07cd_7fb1_6060
            ],
            "sampled {:?}",
            &times[..3.min(times.len())]
        );
    }
}
