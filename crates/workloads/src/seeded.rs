//! Deterministic seeded-stream sampling shared by every arrival-time
//! generator in the workspace.
//!
//! Before this module existed each seeded generator hand-rolled its own
//! SplitMix64 stream: the DSE random search, the streaming engine's
//! Poisson arrival sampler and the `poisson_mix_stream` scenario each
//! re-implemented seeding (and the scenario derived its second stream's
//! seed with an inline golden-ratio multiply). This module is the single
//! home of that machinery:
//!
//! * [`SplitMix64`] — the PRNG itself (`herald_core::rng` re-exports it,
//!   so the DSE keeps its historical path);
//! * [`derive_seed`] — one documented rule for decorrelating the streams
//!   of a multi-tenant scenario while staying a pure function of the
//!   caller's seed;
//! * [`exponential_gap`] / [`poisson_arrival_times`] /
//!   [`arrival_times`] — the arrival-time samplers the streaming engine
//!   and the fleet dispatcher both consume, so a frame generated on the
//!   dispatch path is bit-for-bit the frame the per-chip simulator
//!   replays.
//!
//! Every function here is deterministic: equal seeds give equal byte
//! streams on every platform, which is what makes scenarios, golden
//! files and fleet simulations reproducible.

use crate::ArrivalProcess;

/// SplitMix64: 64 bits of state, one multiply-xorshift output round
/// (Steele, Lea & Flood, OOPSLA 2014 — the seeding generator of
/// `java.util.SplittableRandom` and of xoshiro). The build environment
/// cannot fetch the `rand` crate; this vendored generator is all the
/// workspace needs for reproducible uniform sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `lo..hi` (half-open; `hi > lo`).
    ///
    /// Uses rejection sampling over the smallest covering power of two,
    /// so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`hi <= lo`).
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        let mask = span.next_power_of_two().wrapping_sub(1);
        loop {
            let candidate = self.next_u64() & mask;
            if candidate < span {
                return lo + candidate as usize;
            }
        }
    }

    /// A uniform sample from `(0, 1]`: 53 uniform bits shifted into the
    /// unit interval, never exactly zero (so `ln` stays finite).
    pub fn gen_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / 9_007_199_254_740_992.0
    }
}

/// Derives the seed of sub-stream `index` from a caller-provided base
/// seed: index 0 *is* the base seed, later indices decorrelate via a
/// golden-ratio multiply. This is the exact rule `poisson_mix_stream`
/// has always used for its second tenant, promoted to the one shared
/// definition so every multi-tenant generator produces the same streams
/// it did before the extraction.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        base
    } else {
        base.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index)
    }
}

/// A deterministic exponential inter-arrival gap with mean `1 / rate`.
pub fn exponential_gap(rng: &mut SplitMix64, rate: f64) -> f64 {
    -rng.gen_unit().ln() / rate
}

/// The arrival times of a seeded Poisson stream with mean rate
/// `mean_fps`, in `[0, horizon_s)` — the exact sampler the streaming
/// engine has always used, so seeds keep producing the same traces.
#[must_use]
pub fn poisson_arrival_times(mean_fps: f64, seed: u64, horizon_s: f64) -> Vec<f64> {
    arrival_iter(&ArrivalProcess::Poisson { mean_fps, seed }, horizon_s).collect()
}

/// A pull-based iterator over one stream's arrival times in
/// `[0, horizon_s)`, in increasing order — the lazy form of
/// [`arrival_times`], and since PR 8 the *single source of truth* for
/// which frames exist: [`arrival_times`] is literally
/// `arrival_iter(...).collect()`, so the two can never drift.
///
/// Seeded variants carry their own [`SplitMix64`] state and sample the
/// next gap only when polled, so a million-stream scenario holds one
/// small iterator per stream instead of one materialized `Vec<f64>`
/// trace per stream. Trace streams borrow their times from the
/// [`ArrivalProcess`] they were built from.
#[derive(Debug, Clone)]
pub enum ArrivalIter<'a> {
    /// Exact quotients `seq / fps` (bit-identical to the historical
    /// materialized loop).
    Periodic {
        /// Frame rate, frames per second.
        fps: f64,
        /// Arrival horizon, seconds (exclusive).
        horizon_s: f64,
        /// Next frame index.
        seq: usize,
    },
    /// Seeded exponential gaps with mean `1 / rate`.
    Poisson {
        /// The gap sampler state.
        rng: SplitMix64,
        /// Mean frame rate, frames per second.
        rate: f64,
        /// Arrival horizon, seconds (exclusive).
        horizon_s: f64,
        /// Running arrival clock, seconds.
        t: f64,
    },
    /// A single frame at `t = 0`.
    OneShot {
        /// Whether the frame was already yielded.
        done: bool,
    },
    /// Explicit times replayed verbatim (clipped to the horizon).
    Trace {
        /// The remaining times, borrowed from the arrival process.
        times: &'a [f64],
        /// Arrival horizon, seconds (exclusive).
        horizon_s: f64,
    },
    /// Lewis–Shedler thinning of a homogeneous candidate stream at the
    /// peak rate against the diurnal `sin^2` intensity ramp.
    Diurnal {
        /// The candidate/thinning sampler state.
        rng: SplitMix64,
        /// Trough (edge-of-horizon) rate, frames per second.
        trough_fps: f64,
        /// Peak (mid-horizon) rate, frames per second.
        peak_fps: f64,
        /// Arrival horizon, seconds (exclusive).
        horizon_s: f64,
        /// Running candidate clock, seconds.
        t: f64,
    },
    /// An autoregressive chain: only the session start is known up
    /// front. Successor tokens arrive a fixed gap after their
    /// predecessor *completes*, which no arrival-time iterator can know —
    /// the streaming engine injects those events as completions happen,
    /// so the iterator contract ("every arrival knowable from the spec
    /// alone") holds by yielding exactly the first token.
    Chained {
        /// Arrival time of the first token, seconds.
        start_s: f64,
        /// Arrival horizon, seconds (exclusive).
        horizon_s: f64,
        /// Whether the session start was already yielded.
        done: bool,
    },
}

impl Iterator for ArrivalIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        match self {
            ArrivalIter::Periodic {
                fps,
                horizon_s,
                seq,
            } => {
                let t = *seq as f64 / *fps;
                if t >= *horizon_s {
                    return None;
                }
                *seq += 1;
                Some(t)
            }
            ArrivalIter::Poisson {
                rng,
                rate,
                horizon_s,
                t,
            } => {
                *t += exponential_gap(rng, *rate);
                (*t < *horizon_s).then_some(*t)
            }
            ArrivalIter::OneShot { done } => {
                if *done {
                    return None;
                }
                *done = true;
                Some(0.0)
            }
            ArrivalIter::Trace { times, horizon_s } => loop {
                let (&t, rest) = times.split_first()?;
                *times = rest;
                if t < *horizon_s {
                    return Some(t);
                }
            },
            ArrivalIter::Diurnal {
                rng,
                trough_fps,
                peak_fps,
                horizon_s,
                t,
            } => loop {
                *t += exponential_gap(rng, *peak_fps);
                if *t >= *horizon_s {
                    return None;
                }
                let rate = crate::scenario::diurnal_rate_at(*trough_fps, *peak_fps, *horizon_s, *t);
                if rng.gen_unit() <= rate / *peak_fps {
                    return Some(*t);
                }
            },
            ArrivalIter::Chained {
                start_s,
                horizon_s,
                done,
            } => {
                if *done || *start_s >= *horizon_s {
                    return None;
                }
                *done = true;
                Some(*start_s)
            }
        }
    }
}

/// The lazy arrival-time iterator of one stream over `[0, horizon_s)`:
/// yields exactly the times [`arrival_times`] would collect, in the same
/// order, bit for bit — without materializing them.
#[must_use]
pub fn arrival_iter(arrival: &ArrivalProcess, horizon_s: f64) -> ArrivalIter<'_> {
    match *arrival {
        ArrivalProcess::Periodic { fps } => ArrivalIter::Periodic {
            fps,
            horizon_s,
            seq: 0,
        },
        ArrivalProcess::Poisson { mean_fps, seed } => ArrivalIter::Poisson {
            rng: SplitMix64::seed_from_u64(seed),
            rate: mean_fps,
            horizon_s,
            t: 0.0,
        },
        ArrivalProcess::OneShot => ArrivalIter::OneShot { done: false },
        ArrivalProcess::Trace { ref times_s } => ArrivalIter::Trace {
            times: times_s,
            horizon_s,
        },
        ArrivalProcess::Diurnal {
            trough_fps,
            peak_fps,
            seed,
        } => ArrivalIter::Diurnal {
            rng: SplitMix64::seed_from_u64(seed),
            trough_fps,
            peak_fps,
            horizon_s,
            t: 0.0,
        },
        // Only the session start is knowable from the spec; the engine
        // injects each successor arrival at its predecessor's completion.
        ArrivalProcess::Chained { start_s, .. } => ArrivalIter::Chained {
            start_s,
            horizon_s,
            done: false,
        },
    }
}

/// Every arrival time of one stream in `[0, horizon_s)`, in increasing
/// order: the materialized form of [`arrival_iter`], kept for callers
/// that genuinely need the whole trace at once.
#[must_use]
pub fn arrival_times(arrival: &ArrivalProcess, horizon_s: f64) -> Vec<f64> {
    arrival_iter(arrival, horizon_s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_respected_and_covered() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = rng.gen_range(10, 15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn known_vector_matches_reference() {
        // First outputs of Vigna's reference splitmix64.c with seed 0 —
        // these catch any mis-transcribed multiplier/shift constant,
        // which seed-determinism tests alone cannot.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn unit_samples_stay_in_half_open_interval() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_unit();
            assert!(u > 0.0 && u <= 1.0, "{u}");
        }
    }

    #[test]
    fn derive_seed_matches_the_historical_inline_rule() {
        // Index 0 is the base seed (poisson_mix_stream's camera stream);
        // index 1 reproduces the inline golden-ratio derivation its
        // analytics stream has always used. Changing this breaks every
        // committed trace.
        assert_eq!(derive_seed(9, 0), 9);
        assert_eq!(
            derive_seed(9, 1),
            9u64.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)
        );
        assert_eq!(derive_seed(9, 1), 0x8FF3_4785_799E_5CBE);
        // Distinct indices decorrelate.
        assert_ne!(derive_seed(9, 1), derive_seed(9, 2));
    }

    #[test]
    fn periodic_times_are_exact_quotients() {
        let times = arrival_times(&ArrivalProcess::Periodic { fps: 50.0 }, 0.1);
        assert_eq!(times.len(), 5);
        for (seq, t) in times.iter().enumerate() {
            assert_eq!(t.to_bits(), (seq as f64 / 50.0).to_bits());
        }
    }

    #[test]
    fn one_shot_is_a_single_frame_at_zero() {
        assert_eq!(arrival_times(&ArrivalProcess::OneShot, 5.0), vec![0.0]);
    }

    #[test]
    fn trace_times_are_clipped_to_the_horizon() {
        let arrival = ArrivalProcess::Trace {
            times_s: vec![0.0, 0.5, 1.0, 2.5],
        };
        assert_eq!(arrival_times(&arrival, 1.5), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn poisson_times_are_seeded_and_increasing() {
        let a = poisson_arrival_times(40.0, 1, 0.5);
        let b = poisson_arrival_times(40.0, 1, 0.5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_ne!(a, poisson_arrival_times(40.0, 2, 0.5));
    }

    #[test]
    fn arrival_iter_is_the_single_source_of_truth() {
        // `arrival_times` is `arrival_iter(...).collect()`; this pins
        // the lazy iterator against each variant's semantics (exact
        // quotients, seeded gaps, horizon clipping) bit for bit.
        let cases = [
            ArrivalProcess::Periodic { fps: 50.0 },
            ArrivalProcess::Poisson {
                mean_fps: 30.0,
                seed: 9,
            },
            ArrivalProcess::OneShot,
            ArrivalProcess::Trace {
                times_s: vec![0.0, 0.5, 0.5, 1.0, 2.5],
            },
            ArrivalProcess::Diurnal {
                trough_fps: 10.0,
                peak_fps: 80.0,
                seed: 11,
            },
            ArrivalProcess::Chained {
                start_s: 0.7,
                gap_s: 0.05,
                tokens: 40,
            },
        ];
        for arrival in &cases {
            for horizon in [0.4, 1.0, 1.5] {
                let eager = arrival_times(arrival, horizon);
                let lazy: Vec<f64> = arrival_iter(arrival, horizon).collect();
                let eb: Vec<u64> = eager.iter().map(|t| t.to_bits()).collect();
                let lb: Vec<u64> = lazy.iter().map(|t| t.to_bits()).collect();
                assert_eq!(eb, lb, "{arrival:?} over {horizon}");
                for w in eager.windows(2) {
                    assert!(w[1] >= w[0], "{arrival:?} times sorted");
                }
            }
        }
    }

    #[test]
    fn diurnal_iter_is_seeded_and_ramps_mid_horizon() {
        let arrival = ArrivalProcess::Diurnal {
            trough_fps: 20.0,
            peak_fps: 400.0,
            seed: 5,
        };
        let a = arrival_times(&arrival, 4.0);
        assert_eq!(a, arrival_times(&arrival, 4.0));
        assert_ne!(
            a,
            arrival_times(
                &ArrivalProcess::Diurnal {
                    trough_fps: 20.0,
                    peak_fps: 400.0,
                    seed: 6,
                },
                4.0
            )
        );
        let edges = a.iter().filter(|t| **t < 1.0 || **t >= 3.0).count();
        let middle = a.iter().filter(|t| **t >= 1.0 && **t < 3.0).count();
        assert!(
            middle as f64 > 1.5 * edges as f64,
            "middle {middle} vs edges {edges}"
        );
    }

    #[test]
    fn chained_iter_yields_exactly_the_session_start() {
        // Later tokens depend on completions the iterator cannot know;
        // it must advertise only the first token, clipped to the horizon.
        let arrival = ArrivalProcess::Chained {
            start_s: 0.25,
            gap_s: 0.1,
            tokens: 1000,
        };
        assert_eq!(arrival_times(&arrival, 1.0), vec![0.25]);
        assert_eq!(arrival_times(&arrival, 0.25), Vec::<f64>::new());
        assert!((arrival.mean_fps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_trace_bytes_are_pinned() {
        // Bit-exact pin of the sampler the PR 2/3 scenarios were
        // recorded with: first arrivals of the (30 fps, seed 9) stream
        // `poisson_mix_stream` uses for its camera tenant. If this test
        // fails, every committed trace and golden file silently changed.
        let times = poisson_arrival_times(30.0, 9, 1.0);
        let bits: Vec<u64> = times.iter().take(3).map(|t| t.to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                0x3f8a_1752_8861_50ab,
                0x3f96_d55f_878b_0b36,
                0x3fb1_07cd_7fb1_6060
            ],
            "sampled {:?}",
            &times[..3.min(times.len())]
        );
    }
}
