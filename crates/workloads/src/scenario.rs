//! Streaming multi-tenant scenarios: workload streams with arrival
//! processes, per-stream deadlines and mid-stream workload swaps.
//!
//! The paper evaluates HDAs on AR/VR pipelines that process *streams* of
//! frames at real-time rates (Table II models "different target processing
//! rates of each sub-task" via replica counts) and studies robustness to a
//! workload change after deployment (Fig. 13). A [`Scenario`] captures
//! that operating regime as data: one [`StreamSpec`] per tenant, each with
//! an [`ArrivalProcess`] (periodic frame rate, Poisson bursts, or a single
//! one-shot frame), an optional per-frame deadline, and a list of
//! [`WorkloadSwap`] events that change the stream's workload mid-run.
//!
//! Scenarios are pure descriptions — the event-driven simulator that
//! consumes them lives in `herald-core::sim`.
//!
//! # Example
//!
//! ```
//! use herald_workloads::{Scenario, StreamSpec};
//!
//! let scenario = Scenario::new("demo", 1.0)
//!     .stream(
//!         StreamSpec::periodic(
//!             "cam",
//!             herald_workloads::single_model(herald_models::zoo::mobilenet_v1(), 1),
//!             30.0,
//!         )
//!         .with_deadline(1.0 / 30.0),
//!     );
//! assert_eq!(scenario.streams().len(), 1);
//! ```

use crate::{single_model, MultiDnnWorkload};
use herald_models::zoo;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How frames of one stream arrive over virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A frame every `1 / fps` seconds, starting at `t = 0`.
    Periodic {
        /// Frame rate in frames per second (must be positive).
        fps: f64,
    },
    /// Memoryless bursts: exponential inter-arrival gaps with the given
    /// mean rate, sampled deterministically from `seed`.
    Poisson {
        /// Mean frame rate in frames per second (must be positive).
        mean_fps: f64,
        /// Seed of the deterministic gap sampler; equal seeds give equal
        /// arrival times.
        seed: u64,
    },
    /// A single frame at `t = 0` (the classic one-shot experiment).
    OneShot,
    /// Explicit arrival times in seconds, non-decreasing. This is how
    /// non-homogeneous traffic (the diurnal ramp) and fleet dispatchers
    /// describe exactly which frames a stream carries: the times are
    /// replayed verbatim, so a sharded stream is bit-identical to the
    /// slice of the global stream it was cut from.
    Trace {
        /// The arrival times, seconds, sorted non-decreasing.
        times_s: Vec<f64>,
    },
    /// A non-homogeneous Poisson stream whose rate ramps from
    /// `trough_fps` at the horizon's edges to `peak_fps` at its middle
    /// along [`diurnal_rate_at`]'s `sin^2` curve, sampled lazily by
    /// Lewis–Shedler thinning from `seed`. The *lazy* counterpart of the
    /// materialized [`diurnal_ramp_trace`] streams: a million-stream
    /// diurnal scenario stores three scalars per stream instead of a
    /// `Vec<f64>` trace per stream. (The two samplers are seed-compatible
    /// in shape but not bit-identical, because the trace generator
    /// divides the *aggregate* ramp by the tenant count at each instant.)
    Diurnal {
        /// Trough (edge-of-horizon) rate of this stream, frames per second.
        trough_fps: f64,
        /// Peak (mid-horizon) rate of this stream, frames per second.
        peak_fps: f64,
        /// Seed of the deterministic thinning sampler.
        seed: u64,
    },
    /// Autoregressive decode: a session of `tokens` frames where frame 0
    /// arrives at `start_s` and frame `k + 1` arrives `gap_s` seconds
    /// after frame `k` **completes**. Unlike every other variant, later
    /// arrival times are not known up front — they depend on the
    /// schedule — so [`crate::seeded::arrival_iter`] yields only the
    /// session start and the streaming engine injects each successor
    /// arrival when its predecessor finishes. A chained stream may carry
    /// per-token workloads ([`StreamSpec::token_workloads`]) so frame
    /// `k`'s cost can grow with the KV-cache position.
    Chained {
        /// Arrival time of the first token, seconds.
        start_s: f64,
        /// Think/sampling gap between a token's completion and the next
        /// token's arrival, seconds (must be positive).
        gap_s: f64,
        /// Number of tokens in the session (at least 1).
        tokens: usize,
    },
}

impl ArrivalProcess {
    /// The mean arrival rate in frames per second (0 for one-shot; for a
    /// trace, the frame count over the span to the last arrival, or 0
    /// when that span is empty).
    #[must_use]
    pub fn mean_fps(&self) -> f64 {
        match self {
            ArrivalProcess::Periodic { fps } => *fps,
            ArrivalProcess::Poisson { mean_fps, .. } => *mean_fps,
            ArrivalProcess::OneShot => 0.0,
            ArrivalProcess::Trace { times_s } => match times_s.last() {
                Some(last) if *last > 0.0 => times_s.len() as f64 / last,
                _ => 0.0,
            },
            // sin^2 averages to 1/2 over the horizon.
            ArrivalProcess::Diurnal {
                trough_fps,
                peak_fps,
                ..
            } => trough_fps + (peak_fps - trough_fps) / 2.0,
            // The steady-state token rate if compute were free; actual
            // throughput is 1 / (gap + latency) because arrivals chain on
            // completions, so this is an optimistic summary rate.
            ArrivalProcess::Chained { gap_s, .. } => 1.0 / gap_s,
        }
    }
}

/// A scheduled mid-stream workload change (the Fig. 13 study as a stream
/// event rather than two stitched one-shot runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSwap {
    /// Virtual time of the swap, seconds.
    pub at_s: f64,
    /// The workload that frames arriving after `at_s` instantiate.
    pub workload: MultiDnnWorkload,
}

/// One tenant of a scenario: a named stream of frames, each frame being
/// one inference of the stream's current workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    name: String,
    workload: MultiDnnWorkload,
    arrival: ArrivalProcess,
    deadline_s: Option<f64>,
    swaps: Vec<WorkloadSwap>,
    /// Per-token workloads for [`ArrivalProcess::Chained`] streams: token
    /// `k` instantiates `token_workloads[k]` (empty = every token runs
    /// `workload`). Lets decode streams grow per-token cost with the
    /// KV-cache position while sharing bucketed workloads by reference.
    #[serde(default)]
    token_workloads: Vec<MultiDnnWorkload>,
}

impl StreamSpec {
    /// A stream with an arbitrary arrival process.
    pub fn new(
        name: impl Into<String>,
        workload: MultiDnnWorkload,
        arrival: ArrivalProcess,
    ) -> Self {
        Self {
            name: name.into(),
            workload,
            arrival,
            deadline_s: None,
            swaps: Vec::new(),
            token_workloads: Vec::new(),
        }
    }

    /// A periodic stream at `fps` frames per second.
    pub fn periodic(name: impl Into<String>, workload: MultiDnnWorkload, fps: f64) -> Self {
        Self::new(name, workload, ArrivalProcess::Periodic { fps })
    }

    /// A Poisson stream with mean rate `mean_fps`, sampled from `seed`.
    pub fn poisson(
        name: impl Into<String>,
        workload: MultiDnnWorkload,
        mean_fps: f64,
        seed: u64,
    ) -> Self {
        Self::new(name, workload, ArrivalProcess::Poisson { mean_fps, seed })
    }

    /// A single frame at `t = 0`.
    pub fn one_shot(name: impl Into<String>, workload: MultiDnnWorkload) -> Self {
        Self::new(name, workload, ArrivalProcess::OneShot)
    }

    /// An autoregressive decode session: `tokens` frames where the first
    /// arrives at `start_s` and each successor arrives `gap_s` seconds
    /// after its predecessor completes. `workload` is the representative
    /// (largest-position) token workload used for design-space searches;
    /// per-token workloads can be attached with
    /// [`StreamSpec::with_token_workloads`].
    pub fn chained(
        name: impl Into<String>,
        workload: MultiDnnWorkload,
        start_s: f64,
        gap_s: f64,
        tokens: usize,
    ) -> Self {
        Self::new(
            name,
            workload,
            ArrivalProcess::Chained {
                start_s,
                gap_s,
                tokens,
            },
        )
    }

    /// Sets the per-frame deadline: a frame misses if its completion lags
    /// its arrival by more than `deadline_s`.
    #[must_use]
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Adds a workload swap at `at_s` (kept sorted by time).
    #[must_use]
    pub fn swap_at(mut self, at_s: f64, workload: MultiDnnWorkload) -> Self {
        self.swaps.push(WorkloadSwap { at_s, workload });
        self.swaps.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        self
    }

    /// The stream name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload each frame instantiates before any swap.
    #[must_use]
    pub fn workload(&self) -> &MultiDnnWorkload {
        &self.workload
    }

    /// The arrival process.
    #[must_use]
    pub fn arrival(&self) -> &ArrivalProcess {
        &self.arrival
    }

    /// The per-frame deadline, if any.
    #[must_use]
    pub fn deadline_s(&self) -> Option<f64> {
        self.deadline_s
    }

    /// The scheduled workload swaps, sorted by time.
    #[must_use]
    pub fn swaps(&self) -> &[WorkloadSwap] {
        &self.swaps
    }

    /// Sets the per-token workloads of a chained stream: token `k`
    /// instantiates `token_workloads[k]`. The simulator requires the
    /// length to match the chain's `tokens` count.
    #[must_use]
    pub fn with_token_workloads(mut self, token_workloads: Vec<MultiDnnWorkload>) -> Self {
        self.token_workloads = token_workloads;
        self
    }

    /// The per-token workloads (empty unless set on a chained stream).
    #[must_use]
    pub fn token_workloads(&self) -> &[MultiDnnWorkload] {
        &self.token_workloads
    }
}

/// A complete streaming scenario: a named set of concurrent streams
/// simulated over a fixed arrival horizon.
///
/// Frames arriving before `horizon_s` always run to completion, so the
/// simulated makespan may exceed the horizon when the chip is overloaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    horizon_s: f64,
    streams: Vec<StreamSpec>,
}

impl Scenario {
    /// An empty scenario generating arrivals in `[0, horizon_s)`.
    pub fn new(name: impl Into<String>, horizon_s: f64) -> Self {
        Self {
            name: name.into(),
            horizon_s,
            streams: Vec::new(),
        }
    }

    /// Adds a stream (builder style).
    #[must_use]
    pub fn stream(mut self, stream: StreamSpec) -> Self {
        self.streams.push(stream);
        self
    }

    /// The scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arrival horizon, seconds.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// The streams.
    #[must_use]
    pub fn streams(&self) -> &[StreamSpec] {
        &self.streams
    }

    /// The aggregate *design* workload: every stream's initial workload
    /// merged into one multi-DNN workload. This is what a hardware search
    /// optimizes when an experiment targets a class budget rather than a
    /// fixed accelerator — the streaming analogue of Table II's frames.
    #[must_use]
    pub fn design_workload(&self) -> MultiDnnWorkload {
        let mut merged = MultiDnnWorkload::new(self.name.clone());
        for s in &self.streams {
            merged = merged.with_workload(s.workload());
        }
        merged
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let streams: Vec<String> = self
            .streams
            .iter()
            .map(|s| format!("{} @ {:.1} fps", s.name(), s.arrival().mean_fps()))
            .collect();
        write!(
            f,
            "{} [{}] over {:.2}s",
            self.name,
            streams.join(", "),
            self.horizon_s
        )
    }
}

/// The paper's relative per-sub-task processing rates, expressed as the
/// Table II replica counts: a model assigned `batch` replicas streams at
/// `batch x fps_scale` frames per second, each frame being one inference
/// of a single replica. Deadlines equal the frame period (a frame must
/// finish before the next one of its stream arrives).
fn rated_stream(
    name: &str,
    model: herald_models::DnnModel,
    batch: usize,
    fps_scale: f64,
) -> StreamSpec {
    let fps = batch as f64 * fps_scale;
    StreamSpec::periodic(name, single_model(model, 1), fps).with_deadline(1.0 / fps)
}

/// Table II **AR/VR-A** as a streaming scenario: Resnet50 at `2 x
/// fps_scale`, UNet at `4 x fps_scale` and MobileNetV2 at `4 x fps_scale`
/// frames per second over `horizon_s` seconds. `fps_scale = 7.5` gives the
/// paper-rate 15/30/30 fps mix; smaller scales model the same rate ratios
/// on smaller accelerator classes.
#[must_use]
pub fn arvr_a_stream(fps_scale: f64, horizon_s: f64) -> Scenario {
    Scenario::new("AR/VR-A-stream", horizon_s)
        .stream(rated_stream("resnet50", zoo::resnet50(), 2, fps_scale))
        .stream(rated_stream("unet", zoo::unet(), 4, fps_scale))
        .stream(rated_stream(
            "mobilenet_v2",
            zoo::mobilenet_v2(),
            4,
            fps_scale,
        ))
}

/// Table II **AR/VR-B** as a streaming scenario (same rate convention as
/// [`arvr_a_stream`]).
#[must_use]
pub fn arvr_b_stream(fps_scale: f64, horizon_s: f64) -> Scenario {
    Scenario::new("AR/VR-B-stream", horizon_s)
        .stream(rated_stream("resnet50", zoo::resnet50(), 2, fps_scale))
        .stream(rated_stream("unet", zoo::unet(), 2, fps_scale))
        .stream(rated_stream(
            "mobilenet_v2",
            zoo::mobilenet_v2(),
            4,
            fps_scale,
        ))
        .stream(rated_stream("handpose", zoo::brq_handpose(), 2, fps_scale))
        .stream(rated_stream(
            "depthnet",
            zoo::focal_depthnet(),
            2,
            fps_scale,
        ))
}

/// A bursty two-tenant scenario with seeded Poisson arrivals: a
/// MobileNetV2 camera stream and a ResNet50 analytics stream, each with
/// exponential inter-arrival gaps at `scale x` their base rates (30 and
/// 10 fps), plus a mid-run swap of the camera stream to MobileNetV1 at
/// `horizon_s / 2`. Deadlines equal each stream's mean frame period.
///
/// Arrival times are sampled deterministically from `seed`, so the
/// scenario is reproducible bit for bit — the memoryless counterpart of
/// the rated periodic AR/VR scenarios, used by the online-rescheduling
/// equivalence suite.
#[must_use]
pub fn poisson_mix_stream(scale: f64, horizon_s: f64, seed: u64) -> Scenario {
    let cam_fps = 30.0 * scale;
    let analytics_fps = 10.0 * scale;
    Scenario::new("poisson-mix", horizon_s)
        .stream(
            StreamSpec::poisson(
                "camera",
                single_model(zoo::mobilenet_v2(), 1),
                cam_fps,
                seed,
            )
            .with_deadline(1.0 / cam_fps)
            .swap_at(horizon_s / 2.0, single_model(zoo::mobilenet_v1(), 1)),
        )
        .stream(
            StreamSpec::poisson(
                "analytics",
                single_model(zoo::resnet50(), 1),
                analytics_fps,
                // Decorrelate the two streams while staying a pure
                // function of the caller's seed (the shared rule every
                // multi-tenant generator uses).
                crate::seeded::derive_seed(seed, 1),
            )
            .with_deadline(1.0 / analytics_fps),
        )
}

/// The Fig. 13 workload-change study as one continuous trace: a single
/// periodic stream of full multi-DNN frames that starts as AR/VR-A and
/// swaps to AR/VR-B at `horizon_s / 2`. The deadline applies to every
/// frame, so the deadline-miss transient around the swap is directly
/// observable from the stream report.
#[must_use]
pub fn workload_change_trace(fps: f64, deadline_s: f64, horizon_s: f64) -> Scenario {
    Scenario::new("workload-change", horizon_s).stream(
        StreamSpec::periodic("arvr", crate::arvr_a(), fps)
            .with_deadline(deadline_s)
            .swap_at(horizon_s / 2.0, crate::arvr_b()),
    )
}

/// The AR/VR model rotation the fleet-scale generators draw tenants
/// from: the five Table I models, cycled in a fixed order so tenant `i`
/// always serves the same model for a given generator call.
fn tenant_model(i: usize) -> herald_models::DnnModel {
    match i % 5 {
        0 => zoo::mobilenet_v2(),
        1 => zoo::resnet50(),
        2 => zoo::unet(),
        3 => zoo::brq_handpose(),
        _ => zoo::focal_depthnet(),
    }
}

/// A fleet-scale serving mix: `tenants` independent seeded Poisson
/// streams (tenant `i` runs the `i`-th model of the AR/VR rotation) with
/// an aggregate mean arrival rate of `aggregate_fps` split evenly across
/// tenants, each frame carrying the same `deadline_s`. Tenant seeds are
/// derived from `seed` via [`crate::seeded::derive_seed`], so the whole
/// scenario is a pure function of its arguments — the high-traffic
/// multi-tenant counterpart of [`arvr_a_stream`], sized for dispatch
/// across a pool of accelerators rather than one chip.
///
/// # Panics
///
/// Panics if `tenants` is zero.
#[must_use]
pub fn fleet_mix_stream(
    tenants: usize,
    aggregate_fps: f64,
    deadline_s: f64,
    horizon_s: f64,
    seed: u64,
) -> Scenario {
    assert!(tenants > 0, "a fleet mix needs at least one tenant");
    let per_tenant_fps = aggregate_fps / tenants as f64;
    let mut scenario = Scenario::new(format!("fleet-mix-{tenants}t"), horizon_s);
    for i in 0..tenants {
        let model = tenant_model(i);
        let name = format!("t{i:03}-{}", model.name());
        scenario = scenario.stream(
            StreamSpec::poisson(
                name,
                single_model(model, 1),
                per_tenant_fps,
                crate::seeded::derive_seed(seed, i as u64),
            )
            .with_deadline(deadline_s),
        );
    }
    scenario
}

/// The instantaneous *aggregate* arrival rate (frames per second) of a
/// [`diurnal_ramp_trace`] at time `t_s`: `trough_fps` at the horizon's
/// edges ramping to `peak_fps` at its middle along
/// `trough + (peak - trough) * sin^2(pi t / horizon)`. Exposed so
/// controllers and benches can compare observed load against the
/// trace's ground-truth intensity without re-deriving the ramp shape.
#[must_use]
pub fn diurnal_rate_at(trough_fps: f64, peak_fps: f64, horizon_s: f64, t_s: f64) -> f64 {
    let s = (std::f64::consts::PI * t_s / horizon_s).sin();
    trough_fps + (peak_fps - trough_fps) * s * s
}

/// A diurnal serving trace: `tenants` streams whose *aggregate* arrival
/// rate ramps from `trough_fps` at the horizon's edges to `peak_fps` at
/// its middle (one day compressed into the horizon, rate following
/// `trough + (peak - trough) * sin^2(pi t / horizon)`). Arrivals are a
/// non-homogeneous Poisson process sampled by thinning from per-tenant
/// seeds derived from `seed`, materialized as explicit
/// [`ArrivalProcess::Trace`] streams; each frame carries `deadline_s`.
///
/// # Panics
///
/// Panics if `tenants` is zero or `peak_fps < trough_fps`.
#[must_use]
pub fn diurnal_ramp_trace(
    tenants: usize,
    trough_fps: f64,
    peak_fps: f64,
    deadline_s: f64,
    horizon_s: f64,
    seed: u64,
) -> Scenario {
    assert!(tenants > 0, "a diurnal trace needs at least one tenant");
    assert!(
        peak_fps >= trough_fps,
        "peak rate {peak_fps} must be at least the trough rate {trough_fps}"
    );
    let rate_at = |t: f64| diurnal_rate_at(trough_fps, peak_fps, horizon_s, t) / tenants as f64;
    let ceiling = peak_fps / tenants as f64;
    let mut scenario = Scenario::new(format!("diurnal-{tenants}t"), horizon_s);
    for i in 0..tenants {
        let model = tenant_model(i);
        let name = format!("t{i:03}-{}", model.name());
        let mut rng =
            crate::seeded::SplitMix64::seed_from_u64(crate::seeded::derive_seed(seed, i as u64));
        // Lewis-Shedler thinning: sample a homogeneous candidate stream
        // at the peak rate, keep each candidate with probability
        // rate(t) / peak. Exactly reproducible from the tenant seed.
        let mut times = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += crate::seeded::exponential_gap(&mut rng, ceiling);
            if t >= horizon_s {
                break;
            }
            if rng.gen_unit() <= rate_at(t) / ceiling {
                times.push(t);
            }
        }
        scenario = scenario.stream(
            StreamSpec::new(
                name,
                single_model(model, 1),
                ArrivalProcess::Trace { times_s: times },
            )
            .with_deadline(deadline_s),
        );
    }
    scenario
}

/// The million-stream diurnal serving mix: `tenants` independent
/// [`ArrivalProcess::Diurnal`] streams (tenant `i` runs the `i`-th model
/// of the AR/VR rotation) whose *aggregate* rate ramps from `trough_fps`
/// to `peak_fps` and back across the horizon, split evenly across
/// tenants; each frame carries `deadline_s`. The lazy counterpart of
/// [`diurnal_ramp_trace`]: per stream it stores three scalars instead of
/// a materialized arrival trace, and the five rotation workloads are
/// built once and reference-shared by every tenant — so scenario memory
/// is O(tenants), never O(frames), and a 1M-tenant scenario builds in
/// well under a gigabyte.
///
/// # Panics
///
/// Panics if `tenants` is zero or `peak_fps < trough_fps`.
#[must_use]
pub fn diurnal_fleet_stream(
    tenants: usize,
    trough_fps: f64,
    peak_fps: f64,
    deadline_s: f64,
    horizon_s: f64,
    seed: u64,
) -> Scenario {
    assert!(tenants > 0, "a diurnal fleet needs at least one tenant");
    assert!(
        peak_fps >= trough_fps,
        "peak rate {peak_fps} must be at least the trough rate {trough_fps}"
    );
    // One workload per rotation slot, shared (via `Arc`ed model storage)
    // by every tenant on that slot — a million tenants intern five
    // workloads instead of instantiating a million.
    let rotation: Vec<MultiDnnWorkload> = (0..5.min(tenants))
        .map(|i| single_model(tenant_model(i), 1))
        .collect();
    let per_trough = trough_fps / tenants as f64;
    let per_peak = peak_fps / tenants as f64;
    let mut scenario = Scenario::new(format!("diurnal-fleet-{tenants}t"), horizon_s);
    for i in 0..tenants {
        let workload = rotation[i % rotation.len()].clone();
        let name = format!("t{i}-{}", workload.instances()[0].model().name());
        scenario = scenario.stream(
            StreamSpec::new(
                name,
                workload,
                ArrivalProcess::Diurnal {
                    trough_fps: per_trough,
                    peak_fps: per_peak,
                    seed: crate::seeded::derive_seed(seed, i as u64),
                },
            )
            .with_deadline(deadline_s),
        );
    }
    scenario
}

/// KV-cache bucket width of [`transformer_decode_stream`]: token `k`
/// runs the decoder built for KV length `(k / 64 + 1) * 64`, so tokens
/// in the same bucket share one workload (and one memo slot) while
/// per-token cost still grows stepwise with sequence position.
pub const DECODE_KV_BUCKET: usize = 64;

/// An autoregressive serving scenario: `sessions` independent
/// [`ArrivalProcess::Chained`] decode streams of `tokens` tokens each.
/// Token `k + 1` of a session arrives `gap_s` seconds after token `k`
/// completes (the decode loop's sampling gap); every token carries
/// `deadline_s`. Token `k` instantiates the
/// [`zoo::transformer_decoder`] built for its KV bucket
/// (`(k / DECODE_KV_BUCKET + 1) * DECODE_KV_BUCKET`), so attention
/// score/context GEMMs grow with sequence position; bucket workloads
/// are built once and reference-shared across tokens and sessions.
/// Session start times are drawn deterministically from `seed` over
/// `[0, sessions x gap_s)`, and the stream's representative workload
/// (what design-space searches see) is the largest bucket.
///
/// # Panics
///
/// Panics if `sessions` or `tokens` is zero, or `gap_s` is not positive.
#[must_use]
pub fn transformer_decode_stream(
    sessions: usize,
    tokens: usize,
    gap_s: f64,
    deadline_s: f64,
    seed: u64,
) -> Scenario {
    assert!(sessions > 0, "a decode scenario needs at least one session");
    assert!(tokens > 0, "a decode session emits at least one token");
    assert!(gap_s > 0.0, "the decode sampling gap must be positive");
    let buckets: Vec<MultiDnnWorkload> = (0..tokens.div_ceil(DECODE_KV_BUCKET))
        .map(|b| {
            single_model(
                zoo::transformer_decoder(((b + 1) * DECODE_KV_BUCKET) as u32),
                1,
            )
        })
        .collect();
    let token_workloads: Vec<MultiDnnWorkload> = (0..tokens)
        .map(|k| buckets[k / DECODE_KV_BUCKET].clone())
        .collect();
    let representative = buckets[buckets.len() - 1].clone();
    // Stagger sessions across one "chain period" so they do not all hit
    // the accelerator in lockstep; the spread is seeded per session.
    let spread_s = sessions as f64 * gap_s;
    let horizon_s = spread_s + gap_s;
    let mut scenario = Scenario::new(format!("decode-{sessions}s-{tokens}t"), horizon_s);
    for i in 0..sessions {
        let mut rng =
            crate::seeded::SplitMix64::seed_from_u64(crate::seeded::derive_seed(seed, i as u64));
        let start_s = rng.gen_unit() * spread_s;
        scenario = scenario.stream(
            StreamSpec::chained(
                format!("s{i:03}-decode"),
                representative.clone(),
                start_s,
                gap_s,
                tokens,
            )
            .with_token_workloads(token_workloads.clone())
            .with_deadline(deadline_s),
        );
    }
    scenario
}

/// The weight-density grid [`sparse_mix_stream`] draws from: pruned
/// vision models typically retain 20-80% of their weights, and a share
/// of tenants stay dense.
pub const SPARSE_DENSITY_GRID: [f64; 5] = [0.2, 0.3, 0.5, 0.75, 1.0];

/// A sparse serving mix: the same shape as [`fleet_mix_stream`]
/// (`tenants` seeded Poisson streams over the AR/VR model rotation,
/// aggregate rate split evenly) except each tenant's model is pruned to
/// a per-tenant weight density drawn deterministically from `seed` over
/// [`SPARSE_DENSITY_GRID`]. Density draws use a disjoint seed index
/// space from arrival draws, so a tenant's arrival trace is bit-identical
/// to its [`fleet_mix_stream`] counterpart — the two generators differ
/// *only* in model density, which is exactly what a density-aware
/// fleet-composition comparison needs.
///
/// # Panics
///
/// Panics if `tenants` is zero.
#[must_use]
pub fn sparse_mix_stream(
    tenants: usize,
    aggregate_fps: f64,
    deadline_s: f64,
    horizon_s: f64,
    seed: u64,
) -> Scenario {
    assert!(tenants > 0, "a sparse mix needs at least one tenant");
    let per_tenant_fps = aggregate_fps / tenants as f64;
    let mut scenario = Scenario::new(format!("sparse-mix-{tenants}t"), horizon_s);
    for i in 0..tenants {
        // Arrival seeds use indices [0, tenants); density seeds use
        // [tenants, 2 x tenants) so the two draws never alias.
        let mut density_rng = crate::seeded::SplitMix64::seed_from_u64(crate::seeded::derive_seed(
            seed,
            (tenants + i) as u64,
        ));
        let density = SPARSE_DENSITY_GRID[density_rng.gen_range(0, SPARSE_DENSITY_GRID.len())];
        let model = tenant_model(i).with_uniform_density(density);
        let name = format!("t{i:03}-{}", model.name());
        scenario = scenario.stream(
            StreamSpec::poisson(
                name,
                single_model(model, 1),
                per_tenant_fps,
                crate::seeded::derive_seed(seed, i as u64),
            )
            .with_deadline(deadline_s),
        );
    }
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_streams_and_swaps() {
        let s = workload_change_trace(2.0, 0.6, 4.0);
        assert_eq!(s.streams().len(), 1);
        let stream = &s.streams()[0];
        assert_eq!(stream.swaps().len(), 1);
        assert!((stream.swaps()[0].at_s - 2.0).abs() < 1e-12);
        assert_eq!(stream.swaps()[0].workload.name(), "AR/VR-B");
        assert_eq!(stream.deadline_s(), Some(0.6));
    }

    #[test]
    fn swaps_stay_sorted() {
        let w = single_model(zoo::mobilenet_v1(), 1);
        let s = StreamSpec::periodic("s", w.clone(), 1.0)
            .swap_at(3.0, w.clone())
            .swap_at(1.0, w.clone())
            .swap_at(2.0, w);
        let times: Vec<f64> = s.swaps().iter().map(|x| x.at_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn arvr_scenarios_keep_table2_rate_ratios() {
        let a = arvr_a_stream(1.0, 2.0);
        let rates: Vec<f64> = a.streams().iter().map(|s| s.arrival().mean_fps()).collect();
        assert_eq!(rates, vec![2.0, 4.0, 4.0]);
        let b = arvr_b_stream(2.0, 2.0);
        assert_eq!(b.streams().len(), 5);
        assert!((b.streams()[2].arrival().mean_fps() - 8.0).abs() < 1e-12);
        // Deadlines equal the frame period.
        for s in a.streams().iter().chain(b.streams()) {
            assert!((s.deadline_s().unwrap() - 1.0 / s.arrival().mean_fps()).abs() < 1e-12);
        }
    }

    #[test]
    fn design_workload_merges_all_streams() {
        let a = arvr_a_stream(1.0, 2.0);
        let w = a.design_workload();
        assert_eq!(w.name(), "AR/VR-A-stream");
        assert_eq!(w.instances().len(), 3); // one single-replica workload per stream
        let change = workload_change_trace(1.0, 1.0, 2.0);
        // The design workload is the *initial* workload (AR/VR-A).
        assert_eq!(
            change.design_workload().total_layers(),
            crate::arvr_a().total_layers()
        );
    }

    #[test]
    fn poisson_mix_is_seeded_and_swaps_mid_run() {
        let s = poisson_mix_stream(1.0, 4.0, 9);
        assert_eq!(s.streams().len(), 2);
        assert_eq!(s, poisson_mix_stream(1.0, 4.0, 9));
        assert_ne!(s, poisson_mix_stream(1.0, 4.0, 10));
        let cam = &s.streams()[0];
        assert_eq!(cam.swaps().len(), 1);
        assert!((cam.swaps()[0].at_s - 2.0).abs() < 1e-12);
        assert!((cam.arrival().mean_fps() - 30.0).abs() < 1e-12);
        for stream in s.streams() {
            assert!(
                (stream.deadline_s().unwrap() - 1.0 / stream.arrival().mean_fps()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn one_shot_has_zero_mean_rate() {
        assert_eq!(ArrivalProcess::OneShot.mean_fps(), 0.0);
    }

    #[test]
    fn trace_mean_rate_spans_to_the_last_arrival() {
        let trace = ArrivalProcess::Trace {
            times_s: vec![0.0, 1.0, 2.0, 4.0],
        };
        assert!((trace.mean_fps() - 1.0).abs() < 1e-12);
        assert_eq!(ArrivalProcess::Trace { times_s: vec![] }.mean_fps(), 0.0);
        assert_eq!(ArrivalProcess::Trace { times_s: vec![0.0] }.mean_fps(), 0.0);
    }

    #[test]
    fn fleet_mix_is_seeded_and_splits_the_aggregate_rate() {
        let s = fleet_mix_stream(12, 120.0, 0.05, 2.0, 7);
        assert_eq!(s.streams().len(), 12);
        assert_eq!(s, fleet_mix_stream(12, 120.0, 0.05, 2.0, 7));
        assert_ne!(s, fleet_mix_stream(12, 120.0, 0.05, 2.0, 8));
        let total: f64 = s.streams().iter().map(|t| t.arrival().mean_fps()).sum();
        assert!((total - 120.0).abs() < 1e-9);
        // Tenants rotate through the five AR/VR models and carry the
        // shared deadline; seeds are decorrelated per tenant.
        assert!(s.streams()[0].name().contains("MobileNetV2"));
        assert!(s.streams()[1].name().contains("Resnet50"));
        assert!(s.streams()[5].name().contains("MobileNetV2"));
        let mut seeds = Vec::new();
        for t in s.streams() {
            assert_eq!(t.deadline_s(), Some(0.05));
            match t.arrival() {
                ArrivalProcess::Poisson { seed, .. } => seeds.push(*seed),
                other => panic!("expected Poisson arrivals, got {other:?}"),
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "tenant seeds are pairwise distinct");
    }

    #[test]
    fn diurnal_ramp_peaks_mid_horizon() {
        let s = diurnal_ramp_trace(8, 20.0, 200.0, 0.1, 4.0, 11);
        assert_eq!(s.streams().len(), 8);
        assert_eq!(s, diurnal_ramp_trace(8, 20.0, 200.0, 0.1, 4.0, 11));
        let mut edges = 0usize;
        let mut middle = 0usize;
        for t in s.streams() {
            let ArrivalProcess::Trace { times_s } = t.arrival() else {
                panic!("expected trace arrivals");
            };
            for w in times_s.windows(2) {
                assert!(w[1] >= w[0], "trace times sorted");
            }
            edges += times_s.iter().filter(|t| **t < 1.0 || **t >= 3.0).count();
            middle += times_s.iter().filter(|t| **t >= 1.0 && **t < 3.0).count();
        }
        // The middle half of the horizon runs near the peak rate, the
        // edges near the trough: the ramp must be clearly visible.
        assert!(
            middle as f64 > 1.5 * edges as f64,
            "middle {middle} vs edges {edges}"
        );
    }

    #[test]
    fn diurnal_rate_troughs_at_edges_and_peaks_mid_horizon() {
        assert!((diurnal_rate_at(4.0, 12.0, 3.0, 0.0) - 4.0).abs() < 1e-12);
        assert!((diurnal_rate_at(4.0, 12.0, 3.0, 3.0) - 4.0).abs() < 1e-9);
        assert!((diurnal_rate_at(4.0, 12.0, 3.0, 1.5) - 12.0).abs() < 1e-12);
        // sin^2 is symmetric about the midpoint and monotone up to it.
        let quarter = diurnal_rate_at(4.0, 12.0, 3.0, 0.75);
        assert!((quarter - diurnal_rate_at(4.0, 12.0, 3.0, 2.25)).abs() < 1e-9);
        assert!((quarter - 8.0).abs() < 1e-9, "sin^2(pi/4) = 1/2: {quarter}");
        // A flat trace never leaves its trough.
        assert!((diurnal_rate_at(5.0, 5.0, 3.0, 1.2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_fleet_is_lazy_seeded_and_splits_the_aggregate_rate() {
        let s = diurnal_fleet_stream(10, 20.0, 100.0, 0.1, 2.0, 13);
        assert_eq!(s.streams().len(), 10);
        assert_eq!(s, diurnal_fleet_stream(10, 20.0, 100.0, 0.1, 2.0, 13));
        assert_ne!(s, diurnal_fleet_stream(10, 20.0, 100.0, 0.1, 2.0, 14));
        // Mean aggregate rate: sin^2 averages to 1/2.
        let total: f64 = s.streams().iter().map(|t| t.arrival().mean_fps()).sum();
        assert!((total - 60.0).abs() < 1e-9, "{total}");
        let mut seeds = Vec::new();
        for t in s.streams() {
            assert_eq!(t.deadline_s(), Some(0.1));
            let ArrivalProcess::Diurnal {
                trough_fps,
                peak_fps,
                seed,
            } = t.arrival()
            else {
                panic!("expected lazy diurnal arrivals, got {:?}", t.arrival());
            };
            assert!((trough_fps - 2.0).abs() < 1e-12);
            assert!((peak_fps - 10.0).abs() < 1e-12);
            seeds.push(*seed);
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10, "tenant seeds are pairwise distinct");
        // Interning: tenants on the same rotation slot share model storage.
        let m0 = s.streams()[0].workload().instances()[0].model() as *const _;
        let m5 = s.streams()[5].workload().instances()[0].model() as *const _;
        assert_eq!(m0, m5, "rotation workloads must be reference-shared");
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = arvr_a_stream(1.0, 0.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn chained_scenario_round_trips_through_json_and_legacy_json_defaults_empty() {
        let s = transformer_decode_stream(2, 3, 0.05, 0.2, 21);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Pre-decode JSON has no token_workloads field; it must
        // deserialize to an empty list, not an error.
        let current = serde_json::to_string(&arvr_a_stream(1.0, 0.5)).unwrap();
        let legacy = current.replace(",\"token_workloads\":[]", "");
        assert_ne!(legacy, current, "strip must remove the new field");
        let old: Scenario = serde_json::from_str(&legacy).unwrap();
        assert!(old.streams().iter().all(|t| t.token_workloads().is_empty()));
    }

    #[test]
    fn decode_stream_buckets_kv_and_shares_workloads() {
        let tokens = 2 * DECODE_KV_BUCKET + 5;
        let s = transformer_decode_stream(3, tokens, 0.01, 0.5, 17);
        assert_eq!(s.streams().len(), 3);
        assert_eq!(s, transformer_decode_stream(3, tokens, 0.01, 0.5, 17));
        assert_ne!(s, transformer_decode_stream(3, tokens, 0.01, 0.5, 18));
        let mut starts = Vec::new();
        for t in s.streams() {
            let ArrivalProcess::Chained {
                start_s,
                gap_s,
                tokens: n,
            } = t.arrival()
            else {
                panic!("expected chained arrivals, got {:?}", t.arrival());
            };
            assert!((gap_s - 0.01).abs() < 1e-15);
            assert_eq!(*n, tokens);
            assert!(*start_s >= 0.0 && *start_s < s.horizon_s());
            starts.push(*start_s);
            assert_eq!(t.token_workloads().len(), tokens);
            // Token 0 attends over one bucket, the last token over three.
            assert!(t.token_workloads()[0].name().contains("kv64"));
            assert!(t.token_workloads()[tokens - 1].name().contains("kv192"));
            // The representative workload is the largest bucket.
            assert_eq!(t.workload().name(), t.token_workloads()[tokens - 1].name());
            // Same-bucket tokens share model storage by reference.
            let m0 = t.token_workloads()[0].instances()[0].model() as *const _;
            let m1 = t.token_workloads()[1].instances()[0].model() as *const _;
            let last = t.token_workloads()[tokens - 1].instances()[0].model() as *const _;
            assert_eq!(m0, m1, "bucket workloads must be reference-shared");
            assert_ne!(m0, last, "distinct buckets are distinct models");
        }
        starts.sort_by(f64::total_cmp);
        starts.dedup();
        assert_eq!(starts.len(), 3, "session starts are staggered");
    }

    #[test]
    fn sparse_mix_prunes_tenants_but_keeps_fleet_mix_arrivals() {
        let sparse = sparse_mix_stream(10, 100.0, 0.05, 2.0, 7);
        let dense = fleet_mix_stream(10, 100.0, 0.05, 2.0, 7);
        assert_eq!(sparse.streams().len(), 10);
        assert_eq!(sparse, sparse_mix_stream(10, 100.0, 0.05, 2.0, 7));
        assert_ne!(sparse, sparse_mix_stream(10, 100.0, 0.05, 2.0, 8));
        let mut pruned = 0usize;
        for (s, d) in sparse.streams().iter().zip(dense.streams()) {
            // Arrival processes are bit-identical to the dense fleet mix.
            assert_eq!(s.arrival(), d.arrival());
            let model = s.workload().instances()[0].model();
            let density = model.layer(herald_models::LayerId(0)).density();
            assert!(
                SPARSE_DENSITY_GRID.contains(&density),
                "density {density} off the grid"
            );
            if density < 1.0 {
                pruned += 1;
                assert!(model.name().contains("@d"), "{}", model.name());
            }
        }
        assert!(pruned >= 3, "only {pruned}/10 tenants drew sparse models");
    }

    #[test]
    fn display_summarizes_streams() {
        let text = arvr_a_stream(7.5, 1.0).to_string();
        assert!(text.contains("resnet50 @ 15.0 fps"), "{text}");
    }
}
