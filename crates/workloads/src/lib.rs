//! Multi-DNN evaluation workloads for the Herald HDA framework.
//!
//! Reproduces the paper's Table II: heterogeneous multi-DNN workloads built
//! from the AR/VR models of Table I and the MLPerf inference suite. Each
//! model is replicated once per assigned batch to "model different target
//! processing rates of each sub-task"; every replica is an independent
//! [`WorkloadInstance`] whose layers depend only on earlier layers of the
//! same replica — exactly the structure the Herald scheduler exploits for
//! inter-model layer parallelism.
//!
//! # Example
//!
//! ```
//! use herald_workloads::{arvr_a, mlperf};
//!
//! let a = arvr_a();
//! // Table II: Resnet50 x2, UNet x4, MobileNetV2 x4.
//! assert_eq!(a.instances().len(), 10);
//! let ml = mlperf(8);
//! assert_eq!(ml.instances().len(), 5 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scenario;
pub mod seeded;

pub use scenario::{
    arvr_a_stream, arvr_b_stream, diurnal_fleet_stream, diurnal_ramp_trace, diurnal_rate_at,
    fleet_mix_stream, poisson_mix_stream, sparse_mix_stream, transformer_decode_stream,
    workload_change_trace, ArrivalProcess, Scenario, StreamSpec, WorkloadSwap, DECODE_KV_BUCKET,
    SPARSE_DENSITY_GRID,
};

use herald_models::{zoo, DnnModel};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One independent model replica inside a workload.
///
/// Replicas of the same model share the underlying [`DnnModel`] via
/// reference counting; the instance label distinguishes them in schedules
/// and reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadInstance {
    model: Arc<DnnModel>,
    replica: usize,
}

impl WorkloadInstance {
    /// The underlying model.
    pub fn model(&self) -> &DnnModel {
        &self.model
    }

    /// Replica index among this model's batch (0-based).
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// A unique label such as `"Resnet50#1"`.
    pub fn label(&self) -> String {
        format!("{}#{}", self.model.name(), self.replica)
    }
}

impl fmt::Display for WorkloadInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A heterogeneous multi-DNN workload: a named list of model replicas.
///
/// Build custom workloads with [`MultiDnnWorkload::new`] +
/// [`MultiDnnWorkload::with_model`], or use the paper's Table II workloads
/// ([`arvr_a`], [`arvr_b`], [`mlperf`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDnnWorkload {
    name: String,
    instances: Vec<WorkloadInstance>,
}

impl MultiDnnWorkload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            instances: Vec::new(),
        }
    }

    /// Adds `batches` replicas of `model` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `batches` is zero.
    #[must_use]
    pub fn with_model(mut self, model: DnnModel, batches: usize) -> Self {
        assert!(batches > 0, "a model needs at least one batch");
        let shared = Arc::new(model);
        for replica in 0..batches {
            self.instances.push(WorkloadInstance {
                model: Arc::clone(&shared),
                replica,
            });
        }
        self
    }

    /// Appends every replica of another workload (builder style). Replica
    /// indices are kept as-is, so merged workloads may repeat labels such
    /// as `"Resnet50#0"`; labels are cosmetic and schedules key on task
    /// ids.
    #[must_use]
    pub fn with_workload(mut self, other: &MultiDnnWorkload) -> Self {
        self.instances.extend(other.instances.iter().cloned());
        self
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All model replicas, in insertion order.
    pub fn instances(&self) -> &[WorkloadInstance] {
        &self.instances
    }

    /// Total MAC-layer count across all replicas.
    pub fn total_layers(&self) -> usize {
        self.instances.iter().map(|i| i.model.num_layers()).sum()
    }

    /// Total MAC operations across all replicas.
    pub fn total_macs(&self) -> u64 {
        self.instances.iter().map(|i| i.model.total_macs()).sum()
    }

    /// Structural equality with an `Arc` pointer fast path: clones of a
    /// shared workload (e.g. a million fleet tenants instantiated from
    /// one rotation) share their [`DnnModel`] allocations, so they
    /// compare by pointer instead of walking every layer. Falls back to
    /// the full `PartialEq` when the pointers differ, so the result is
    /// always exactly `self == other`.
    pub fn same_structure(&self, other: &MultiDnnWorkload) -> bool {
        if self.name != other.name || self.instances.len() != other.instances.len() {
            return false;
        }
        if self
            .instances
            .iter()
            .zip(&other.instances)
            .all(|(a, b)| a.replica == b.replica && Arc::ptr_eq(&a.model, &b.model))
        {
            return true;
        }
        self == other
    }

    /// The distinct models in this workload with their batch counts,
    /// in first-appearance order (the Table II rows).
    pub fn model_mix(&self) -> Vec<(String, usize)> {
        let mut mix: Vec<(String, usize)> = Vec::new();
        for inst in &self.instances {
            let name = inst.model.name().to_string();
            if let Some(entry) = mix.iter_mut().find(|(n, _)| *n == name) {
                entry.1 += 1;
            } else {
                mix.push((name, 1));
            }
        }
        mix
    }
}

impl fmt::Display for MultiDnnWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mix: Vec<String> = self
            .model_mix()
            .into_iter()
            .map(|(name, n)| format!("{name} x{n}"))
            .collect();
        write!(
            f,
            "{} [{}] ({} layers)",
            self.name,
            mix.join(", "),
            self.total_layers()
        )
    }
}

/// Table II **AR/VR-A**: Resnet50 x2, UNet x4, MobileNetV2 x4.
pub fn arvr_a() -> MultiDnnWorkload {
    MultiDnnWorkload::new("AR/VR-A")
        .with_model(zoo::resnet50(), 2)
        .with_model(zoo::unet(), 4)
        .with_model(zoo::mobilenet_v2(), 4)
}

/// Table II **AR/VR-B**: Resnet50 x2, UNet x2, MobileNetV2 x4,
/// BR-Q Handpose x2, Focal-Length DepthNet x2.
pub fn arvr_b() -> MultiDnnWorkload {
    MultiDnnWorkload::new("AR/VR-B")
        .with_model(zoo::resnet50(), 2)
        .with_model(zoo::unet(), 2)
        .with_model(zoo::mobilenet_v2(), 4)
        .with_model(zoo::brq_handpose(), 2)
        .with_model(zoo::focal_depthnet(), 2)
}

/// Table II **MLPerf** multi-stream: Resnet50, MobileNetV1, SSD-Resnet34,
/// SSD-MobileNetV1 and GNMT, each at the given batch size (1 by default in
/// the paper, 8 for the batch-size study of Table VI).
pub fn mlperf(batch: usize) -> MultiDnnWorkload {
    MultiDnnWorkload::new(if batch == 1 {
        "MLPerf".to_string()
    } else {
        format!("MLPerf-b{batch}")
    })
    .with_model(zoo::resnet50(), batch)
    .with_model(zoo::mobilenet_v1(), batch)
    .with_model(zoo::ssd_resnet34(), batch)
    .with_model(zoo::ssd_mobilenet_v1(), batch)
    .with_model(zoo::gnmt(), batch)
}

/// All three Table II workloads at their paper batch sizes.
pub fn all_workloads() -> Vec<MultiDnnWorkload> {
    vec![arvr_a(), arvr_b(), mlperf(1)]
}

/// A single-DNN batch workload (paper Fig. 12 / Table VI studies).
pub fn single_model(model: DnnModel, batch: usize) -> MultiDnnWorkload {
    let name = format!("{}-b{batch}", model.name());
    MultiDnnWorkload::new(name).with_model(model, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arvr_a_matches_table2() {
        let w = arvr_a();
        assert_eq!(
            w.model_mix(),
            vec![
                ("Resnet50".to_string(), 2),
                ("UNet".to_string(), 4),
                ("MobileNetV2".to_string(), 4)
            ]
        );
    }

    #[test]
    fn arvr_b_matches_table2() {
        let w = arvr_b();
        assert_eq!(w.instances().len(), 12);
        assert_eq!(w.model_mix().len(), 5);
    }

    #[test]
    fn mlperf_scales_with_batch() {
        assert_eq!(mlperf(1).instances().len(), 5);
        assert_eq!(mlperf(8).instances().len(), 40);
        assert_eq!(mlperf(8).total_macs(), 8 * mlperf(1).total_macs());
    }

    #[test]
    fn layer_counts_are_workload_scale() {
        // Paper Table VII: AR/VR-A 448, AR/VR-B 618, MLPerf 181 layers.
        // Our zoo encodes slightly different per-model layer counts
        // (documented in EXPERIMENTS.md); totals must be the same order.
        assert!((300..600).contains(&arvr_a().total_layers()));
        assert!((400..800).contains(&arvr_b().total_layers()));
        assert!((150..300).contains(&mlperf(1).total_layers()));
    }

    #[test]
    fn replicas_share_model_storage() {
        let w = arvr_a();
        let first_unet = w
            .instances()
            .iter()
            .find(|i| i.model().name() == "UNet")
            .unwrap();
        assert_eq!(first_unet.replica(), 0);
        let labels: Vec<String> = w
            .instances()
            .iter()
            .filter(|i| i.model().name() == "UNet")
            .map(WorkloadInstance::label)
            .collect();
        assert_eq!(labels, vec!["UNet#0", "UNet#1", "UNet#2", "UNet#3"]);
    }

    #[test]
    fn single_model_workload() {
        let w = single_model(herald_models::zoo::unet(), 4);
        assert_eq!(w.name(), "UNet-b4");
        assert_eq!(w.instances().len(), 4);
    }

    #[test]
    fn display_summarizes_mix() {
        let text = arvr_a().to_string();
        assert!(text.contains("Resnet50 x2"), "{text}");
        assert!(text.contains("layers"), "{text}");
    }

    #[test]
    fn same_structure_matches_partial_eq() {
        let a = arvr_a();
        let clone = a.clone(); // shares model Arcs: pointer fast path
        assert!(a.same_structure(&clone));
        let rebuilt = arvr_a(); // fresh Arcs: deep-equality fallback
        assert!(a.same_structure(&rebuilt));
        assert_eq!(a == rebuilt, a.same_structure(&rebuilt));
        let b = arvr_b();
        assert!(!a.same_structure(&b));
        assert_eq!(a == b, a.same_structure(&b));
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_rejected() {
        let _ = MultiDnnWorkload::new("w").with_model(herald_models::zoo::unet(), 0);
    }
}
