//! Convolution-loop dimensions (`K`, `C`, `Y`, `X`, `R`, `S`) shared by the
//! whole Herald stack.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven loop dimensions of a convolution-family layer, following the
/// naming of the paper's Fig. 4 loop nests:
///
/// * `k` — output channels,
/// * `c` — input channels,
/// * `y`/`x` — input activation rows/columns (*unpadded*),
/// * `r`/`s` — filter rows/columns,
/// * `stride` — spatial stride (down-scale for conv, up-scale for
///   transposed conv),
/// * `pad` — symmetric zero padding applied to each spatial border.
///
/// Output spatial sizes are derived via standard convolution arithmetic by
/// [`LayerDims::out_y`] / [`LayerDims::out_x`]; transposed convolutions must
/// use [`LayerDims::up_out_y`] / [`LayerDims::up_out_x`] instead.
///
/// # Example
///
/// ```
/// use herald_models::LayerDims;
///
/// // ResNet-50 conv1: 7x7/2 on a padded 224x224x3 input, 64 filters.
/// let d = LayerDims::conv(64, 3, 224, 224, 7, 7).with_stride(2).with_pad(3);
/// assert_eq!(d.out_y(), 112);
/// assert_eq!(d.out_x(), 112);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerDims {
    /// Output channels (`K`).
    pub k: u32,
    /// Input channels (`C`).
    pub c: u32,
    /// Input activation rows (`Y`).
    pub y: u32,
    /// Input activation columns (`X`).
    pub x: u32,
    /// Filter rows (`R`).
    pub r: u32,
    /// Filter columns (`S`).
    pub s: u32,
    /// Spatial stride.
    pub stride: u32,
    /// Symmetric zero padding on each spatial border.
    pub pad: u32,
}

impl LayerDims {
    /// Creates convolution dimensions with stride 1 and no padding.
    ///
    /// # Panics
    ///
    /// Panics if any of `k`, `c`, `y`, `x`, `r`, `s` is zero, or if the
    /// filter does not fit inside the (unpadded) input.
    pub fn conv(k: u32, c: u32, y: u32, x: u32, r: u32, s: u32) -> Self {
        assert!(
            k > 0 && c > 0 && y > 0 && x > 0 && r > 0 && s > 0,
            "layer dimensions must be positive: k={k} c={c} y={y} x={x} r={r} s={s}"
        );
        Self {
            k,
            c,
            y,
            x,
            r,
            s,
            stride: 1,
            pad: 0,
        }
    }

    /// Creates fully-connected dimensions: a `k x c` weight matrix applied to
    /// a length-`c` vector (all spatial dims are 1).
    pub fn fc(k: u32, c: u32) -> Self {
        Self::conv(k, c, 1, 1, 1, 1)
    }

    /// Creates GEMM-style dimensions: a `k x c` weight matrix applied to
    /// `m` independent column vectors (e.g. RNN timesteps). Encoded as a
    /// point-wise convolution over an `m x 1` spatial extent.
    pub fn gemm(k: u32, c: u32, m: u32) -> Self {
        Self::conv(k, c, m, 1, 1, 1)
    }

    /// Sets the spatial stride (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_stride(mut self, stride: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Sets the symmetric padding (builder style).
    #[must_use]
    pub fn with_pad(mut self, pad: u32) -> Self {
        self.pad = pad;
        self
    }

    /// Output rows for a regular (down-scaling) convolution.
    ///
    /// # Panics
    ///
    /// Panics if the filter does not fit in the padded input
    /// (`y + 2*pad < r`).
    pub fn out_y(&self) -> u32 {
        let padded = self.y + 2 * self.pad;
        assert!(
            padded >= self.r,
            "filter rows {} exceed padded input rows {}",
            self.r,
            padded
        );
        (padded - self.r) / self.stride + 1
    }

    /// Output columns for a regular (down-scaling) convolution.
    ///
    /// # Panics
    ///
    /// Panics if the filter does not fit in the padded input
    /// (`x + 2*pad < s`).
    pub fn out_x(&self) -> u32 {
        let padded = self.x + 2 * self.pad;
        assert!(
            padded >= self.s,
            "filter columns {} exceed padded input columns {}",
            self.s,
            padded
        );
        (padded - self.s) / self.stride + 1
    }

    /// Output rows for a transposed (up-scaling) convolution: `y * stride`.
    pub fn up_out_y(&self) -> u32 {
        self.y * self.stride
    }

    /// Output columns for a transposed (up-scaling) convolution.
    pub fn up_out_x(&self) -> u32 {
        self.x * self.stride
    }

    /// The channel-activation size ratio used by the paper's Table I as a
    /// one-number abstraction of layer shape: input channels divided by
    /// input activation rows (`C / Y`).
    pub fn channel_activation_ratio(&self) -> f64 {
        f64::from(self.c) / f64::from(self.y)
    }
}

impl fmt::Display for LayerDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K{} C{} Y{} X{} R{} S{} /{} +{}",
            self.k, self.c, self.y, self.x, self.r, self.s, self.stride, self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_arithmetic_same_padding() {
        // 3x3/1 pad 1 keeps spatial size.
        let d = LayerDims::conv(64, 64, 56, 56, 3, 3).with_pad(1);
        assert_eq!(d.out_y(), 56);
        assert_eq!(d.out_x(), 56);
    }

    #[test]
    fn conv_arithmetic_valid_padding() {
        // UNet-style 3x3 valid conv shrinks by 2.
        let d = LayerDims::conv(64, 1, 572, 572, 3, 3);
        assert_eq!(d.out_y(), 570);
    }

    #[test]
    fn conv_arithmetic_strided() {
        let d = LayerDims::conv(64, 3, 224, 224, 7, 7)
            .with_stride(2)
            .with_pad(3);
        assert_eq!(d.out_y(), 112);
    }

    #[test]
    fn fc_is_all_ones_spatial() {
        let d = LayerDims::fc(1000, 2048);
        assert_eq!((d.y, d.x, d.r, d.s), (1, 1, 1, 1));
        assert_eq!(d.out_y(), 1);
    }

    #[test]
    fn gemm_folds_timesteps_into_rows() {
        let d = LayerDims::gemm(4096, 1024, 25);
        assert_eq!(d.out_y(), 25);
        assert_eq!(d.out_x(), 1);
    }

    #[test]
    fn upconv_doubles_spatial() {
        let d = LayerDims::conv(512, 1024, 28, 28, 2, 2).with_stride(2);
        assert_eq!(d.up_out_y(), 56);
        assert_eq!(d.up_out_x(), 56);
    }

    #[test]
    fn channel_activation_ratio_matches_table1_examples() {
        // ResNet-50 conv1: 3 / 224 = 0.0134 (Table I min for Resnet50).
        let conv1 = LayerDims::conv(64, 3, 224, 224, 7, 7)
            .with_stride(2)
            .with_pad(3);
        assert!((conv1.channel_activation_ratio() - 0.0134).abs() < 1e-3);
        // UNet first conv: 1 / 572 = 0.0017 (Table I min for UNet).
        let unet1 = LayerDims::conv(64, 1, 572, 572, 3, 3);
        assert!((unet1.channel_activation_ratio() - 0.00175).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_channel_rejected() {
        let _ = LayerDims::conv(0, 3, 224, 224, 3, 3);
    }

    #[test]
    #[should_panic(expected = "exceed padded input")]
    fn oversized_filter_rejected() {
        let _ = LayerDims::conv(8, 8, 2, 2, 5, 5).out_y();
    }

    #[test]
    fn padding_can_rescue_small_inputs() {
        // A 3x3 filter on a 1x1 input is legal with pad 1 (SSD's smallest
        // pyramid level does exactly this).
        let d = LayerDims::conv(128, 128, 1, 1, 3, 3).with_pad(1);
        assert_eq!(d.out_y(), 1);
    }
}
