//! DNN model intermediate representation and model zoo for the Herald
//! heterogeneous-dataflow-accelerator (HDA) framework.
//!
//! This crate provides the *workload side* of the reproduction of
//! "Heterogeneous Dataflow Accelerators for Multi-DNN Workloads" (HPCA 2021):
//!
//! * [`TensorShape`] / [`LayerDims`] — tensor and convolution-loop dimensions
//!   (`K`, `C`, `Y`, `X`, `R`, `S`, stride, padding) used by every layer.
//! * [`LayerOp`] / [`Layer`] — the operator taxonomy of the paper's Table I
//!   (CONV2D, point-wise, depth-wise, FC, up-scale/transposed convolution).
//! * [`DnnModel`] / [`ModelBuilder`] — a dependence-ordered layer graph with
//!   skip connections and concatenation edges.
//! * [`zoo`] — the exact networks used by the paper's evaluation workloads:
//!   ResNet-50, MobileNetV1/V2, UNet, BR-Q HandposeNet, Focal-Length
//!   DepthNet, SSD-ResNet34, SSD-MobileNetV1 and GNMT.
//! * [`ModelStats`] — per-model heterogeneity statistics (channel-activation
//!   size ratio, operator sets) reproducing the paper's Table I.
//!
//! # Example
//!
//! ```
//! use herald_models::{zoo, ModelStats};
//!
//! let resnet = zoo::resnet50();
//! let stats = ModelStats::for_model(&resnet);
//! assert_eq!(resnet.name(), "Resnet50");
//! // ResNet-50 has 54 MAC layers (49 convs + 4 projections + 1 FC).
//! assert_eq!(resnet.num_layers(), 54);
//! assert!(stats.max_channel_activation_ratio > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dims;
mod graph;
mod layer;
mod stats;
mod tensor;
pub mod zoo;

pub use dims::LayerDims;
pub use graph::{DnnModel, LayerId, ModelBuilder, ModelError};
pub use layer::{Layer, LayerOp};
pub use stats::ModelStats;
pub use tensor::TensorShape;
