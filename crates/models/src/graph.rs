//! Dependence-ordered DNN layer graphs.

use crate::{Layer, LayerDims, LayerOp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Index of a layer within its [`DnnModel`].
///
/// Layers are stored in a topological (dependence-respecting) order, which
/// the builder guarantees by only allowing edges from already-added layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Error produced while constructing a [`DnnModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A layer name was used twice within one model.
    DuplicateLayerName(String),
    /// A dependence edge referenced a layer that does not exist (yet).
    UnknownDependency {
        /// Layer being added.
        layer: String,
        /// The missing predecessor id.
        missing: LayerId,
    },
    /// The model has no layers.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateLayerName(name) => {
                write!(f, "duplicate layer name `{name}`")
            }
            ModelError::UnknownDependency { layer, missing } => {
                write!(f, "layer `{layer}` depends on unknown layer {missing}")
            }
            ModelError::Empty => write!(f, "model has no layers"),
        }
    }
}

impl Error for ModelError {}

/// A DNN model: a named, dependence-ordered list of MAC layers.
///
/// The dependence structure is a DAG stored as per-layer predecessor lists.
/// Sequential chains, skip connections (ResNet) and concatenations (UNet)
/// are all expressed as extra predecessor edges; non-MAC glue (pooling,
/// activation functions, element-wise adds) is folded into the shapes of the
/// surrounding MAC layers, exactly as analytical accelerator cost models
/// treat them.
///
/// # Example
///
/// ```
/// use herald_models::{LayerDims, LayerOp, ModelBuilder};
///
/// let model = ModelBuilder::new("tiny")
///     .chain("conv1", LayerOp::Conv2d, LayerDims::conv(8, 3, 16, 16, 3, 3).with_pad(1))
///     .chain("conv2", LayerOp::Conv2d, LayerDims::conv(8, 8, 16, 16, 3, 3).with_pad(1))
///     .build()
///     .unwrap();
/// assert_eq!(model.num_layers(), 2);
/// assert_eq!(model.predecessors(herald_models::LayerId(1)),
///            &[herald_models::LayerId(0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    name: String,
    layers: Vec<Layer>,
    preds: Vec<Vec<LayerId>>,
}

impl DnnModel {
    /// The model name (e.g. `"Resnet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of MAC layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterates over `(LayerId, &Layer)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, &Layer)> {
        self.layers.iter().enumerate().map(|(i, l)| (LayerId(i), l))
    }

    /// Predecessor (dependence) list of a layer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn predecessors(&self, id: LayerId) -> &[LayerId] {
        &self.preds[id.0]
    }

    /// Total MAC count across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total filter-weight element count across all layers.
    pub fn total_weight_elems(&self) -> u64 {
        self.layers.iter().map(Layer::weight_elems).sum()
    }

    /// Looks up a layer id by name.
    pub fn layer_id(&self, name: &str) -> Option<LayerId> {
        self.layers
            .iter()
            .position(|l| l.name() == name)
            .map(LayerId)
    }

    /// A copy of this model with every layer transformed (dependence
    /// edges and the model name are kept). The transform must preserve
    /// layer-name uniqueness; it is intended for identity-adjacent
    /// rewrites such as density or sequence-position stamping.
    #[must_use]
    pub fn map_layers(&self, mut f: impl FnMut(Layer) -> Layer) -> DnnModel {
        DnnModel {
            name: self.name.clone(),
            layers: self.layers.iter().cloned().map(&mut f).collect(),
            preds: self.preds.clone(),
        }
    }

    /// A copy of this model with every layer's weight density set to
    /// `density`, renamed `"{name}@d{percent}"` so sparse variants are
    /// distinguishable in schedules and reports. `with_uniform_density(1.0)`
    /// keeps the name and is layer-for-layer equal to the original.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density <= 1` and finite (see
    /// [`Layer::with_density`]).
    #[must_use]
    pub fn with_uniform_density(&self, density: f64) -> DnnModel {
        let mut model = self.map_layers(|l| l.with_density(density));
        if density < 1.0 {
            model.name = format!("{}@d{:.0}", self.name, density * 100.0);
        }
        model
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} layers)", self.name, self.layers.len())
    }
}

/// Incremental builder for [`DnnModel`] graphs.
///
/// [`ModelBuilder::chain`] appends a layer depending on the previous one
/// (the common sequential case); [`ModelBuilder::layer_with_deps`] expresses
/// skip connections and concatenations by naming explicit predecessors.
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    layers: Vec<Layer>,
    preds: Vec<Vec<LayerId>>,
    names: HashMap<String, LayerId>,
    error: Option<ModelError>,
}

impl ModelBuilder {
    /// Starts building a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
            preds: Vec::new(),
            names: HashMap::new(),
            error: None,
        }
    }

    /// Id that the *next* added layer will receive.
    pub fn next_id(&self) -> LayerId {
        LayerId(self.layers.len())
    }

    /// Id of the most recently added layer, if any.
    pub fn last_id(&self) -> Option<LayerId> {
        self.layers.len().checked_sub(1).map(LayerId)
    }

    /// Appends a layer that depends on the previously added layer (or has no
    /// dependence if it is the first layer).
    #[must_use]
    pub fn chain(self, name: impl Into<String>, op: LayerOp, dims: LayerDims) -> Self {
        let deps: Vec<LayerId> = self.last_id().into_iter().collect();
        self.layer_with_deps(name, op, dims, &deps)
    }

    /// Appends an input layer with no dependences (useful for models with
    /// multiple entry points).
    #[must_use]
    pub fn input(self, name: impl Into<String>, op: LayerOp, dims: LayerDims) -> Self {
        self.layer_with_deps(name, op, dims, &[])
    }

    /// Appends a layer with an explicit predecessor list. Use this to
    /// express skip connections (extra edge from an earlier layer) and
    /// concatenations (two or more predecessors).
    #[must_use]
    pub fn layer_with_deps(
        mut self,
        name: impl Into<String>,
        op: LayerOp,
        dims: LayerDims,
        deps: &[LayerId],
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let name = name.into();
        if self.names.contains_key(&name) {
            self.error = Some(ModelError::DuplicateLayerName(name));
            return self;
        }
        for &d in deps {
            if d.0 >= self.layers.len() {
                self.error = Some(ModelError::UnknownDependency {
                    layer: name,
                    missing: d,
                });
                return self;
            }
        }
        let id = LayerId(self.layers.len());
        self.names.insert(name.clone(), id);
        self.layers.push(Layer::new(name, op, dims));
        self.preds.push(deps.to_vec());
        self
    }

    /// Finishes the model.
    ///
    /// # Errors
    ///
    /// Returns the first construction error encountered, or
    /// [`ModelError::Empty`] if no layers were added.
    pub fn build(self) -> Result<DnnModel, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.layers.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(DnnModel {
            name: self.name,
            layers: self.layers,
            preds: self.preds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> LayerDims {
        LayerDims::conv(8, 8, 16, 16, 3, 3).with_pad(1)
    }

    fn entry_dims() -> LayerDims {
        LayerDims::conv(8, 3, 16, 16, 3, 3).with_pad(1)
    }

    #[test]
    fn chain_builds_linear_dependence() {
        let m = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("b", LayerOp::Conv2d, dims())
            .chain("c", LayerOp::Conv2d, dims())
            .build()
            .unwrap();
        assert_eq!(m.predecessors(LayerId(0)), &[]);
        assert_eq!(m.predecessors(LayerId(1)), &[LayerId(0)]);
        assert_eq!(m.predecessors(LayerId(2)), &[LayerId(1)]);
    }

    #[test]
    fn skip_connection_adds_second_edge() {
        let m = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("b", LayerOp::Conv2d, dims())
            .layer_with_deps("c", LayerOp::Conv2d, dims(), &[LayerId(0), LayerId(1)])
            .build()
            .unwrap();
        assert_eq!(m.predecessors(LayerId(2)), &[LayerId(0), LayerId(1)]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let e = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("a", LayerOp::Conv2d, dims())
            .build()
            .unwrap_err();
        assert_eq!(e, ModelError::DuplicateLayerName("a".into()));
    }

    #[test]
    fn forward_dependency_rejected() {
        let e = ModelBuilder::new("m")
            .layer_with_deps("a", LayerOp::Conv2d, entry_dims(), &[LayerId(3)])
            .build()
            .unwrap_err();
        assert!(matches!(e, ModelError::UnknownDependency { .. }));
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(
            ModelBuilder::new("m").build().unwrap_err(),
            ModelError::Empty
        );
    }

    #[test]
    fn layer_lookup_by_name() {
        let m = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("b", LayerOp::Conv2d, dims())
            .build()
            .unwrap();
        assert_eq!(m.layer_id("b"), Some(LayerId(1)));
        assert_eq!(m.layer_id("zzz"), None);
    }

    #[test]
    fn totals_aggregate_layers() {
        let m = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("b", LayerOp::Conv2d, dims())
            .build()
            .unwrap();
        assert_eq!(
            m.total_macs(),
            m.layer(LayerId(0)).macs() + m.layer(LayerId(1)).macs()
        );
        assert!(m.total_weight_elems() > 0);
    }

    #[test]
    fn uniform_density_stamps_every_layer_and_renames() {
        let m = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("b", LayerOp::Conv2d, dims())
            .build()
            .unwrap();
        let sparse = m.with_uniform_density(0.4);
        assert_eq!(sparse.name(), "m@d40");
        assert_eq!(sparse.num_layers(), m.num_layers());
        for (id, layer) in sparse.iter() {
            assert_eq!(layer.density(), 0.4);
            assert_eq!(layer.dims(), m.layer(id).dims());
            assert_eq!(sparse.predecessors(id), m.predecessors(id));
        }
        // Density 1.0 is the identity transform, name included.
        assert_eq!(m.with_uniform_density(1.0), m);
    }

    #[test]
    fn map_layers_preserves_structure() {
        let m = ModelBuilder::new("m")
            .chain("a", LayerOp::Conv2d, entry_dims())
            .chain("b", LayerOp::Conv2d, dims())
            .build()
            .unwrap();
        let stamped = m.map_layers(|l| l.with_seq_position(9));
        assert_eq!(stamped.name(), "m");
        assert!(stamped.layers().iter().all(|l| l.seq_position() == 9));
        assert_eq!(stamped.predecessors(LayerId(1)), &[LayerId(0)]);
    }

    #[test]
    fn errors_are_displayable() {
        let e = ModelError::DuplicateLayerName("x".into());
        assert!(e.to_string().contains("duplicate"));
        let e = ModelError::UnknownDependency {
            layer: "x".into(),
            missing: LayerId(9),
        };
        assert!(e.to_string().contains("L9"));
    }
}
