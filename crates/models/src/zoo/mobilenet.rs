//! MobileNetV1 [Howard et al.] and MobileNetV2 [Sandler et al., CVPR 2018].

use crate::{DnnModel, LayerDims, LayerId, LayerOp, ModelBuilder};

/// MobileNetV1 for 224x224x3 classification: a 3x3/2 stem followed by 13
/// depth-wise-separable blocks (depth-wise 3x3 + point-wise 1x1) and a
/// 1024->1000 FC. 28 MAC layers total.
///
/// # Example
///
/// ```
/// use herald_models::zoo::mobilenet_v1;
/// assert_eq!(mobilenet_v1().num_layers(), 28);
/// ```
pub fn mobilenet_v1() -> DnnModel {
    build_mobilenet_v1("MobileNetV1", 224, true)
        .0
        .build()
        .expect("mobilenet_v1 definition is valid")
}

/// Shared MobileNetV1 body so the SSD variant can reuse it. Returns the
/// builder, the id of the final feature producer, its channel count and its
/// spatial size. `with_classifier` appends the 1024->1000 FC.
pub(crate) fn build_mobilenet_v1(
    name: &str,
    input_y: u32,
    with_classifier: bool,
) -> (ModelBuilder, LayerId, u32, u32) {
    let mut b = ModelBuilder::new(name).chain(
        "conv1",
        LayerOp::Conv2d,
        LayerDims::conv(32, 3, input_y, input_y, 3, 3)
            .with_stride(2)
            .with_pad(1),
    );
    let mut y = input_y / 2;
    let mut in_ch = 32u32;

    // (output channels of the point-wise conv, depth-wise stride)
    let blocks: [(u32, u32); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out, stride)) in blocks.into_iter().enumerate() {
        let n = i + 1;
        b = b.chain(
            format!("dw{n}"),
            LayerOp::DepthwiseConv,
            LayerDims::conv(in_ch, in_ch, y, y, 3, 3)
                .with_stride(stride)
                .with_pad(1),
        );
        y = y.div_ceil(stride);
        b = b.chain(
            format!("pw{n}"),
            LayerOp::PointwiseConv,
            LayerDims::conv(out, in_ch, y, y, 1, 1),
        );
        in_ch = out;
    }
    let feat = b.last_id().expect("blocks added");
    if with_classifier {
        // Global average pool then FC.
        b = b.chain("fc", LayerOp::Fc, LayerDims::fc(1000, 1024));
    }
    (b, feat, in_ch, y)
}

/// MobileNetV2 for 224x224x3 classification: stem, 17 inverted-residual
/// bottlenecks (expand point-wise, depth-wise 3x3, linear point-wise), the
/// 1x1/1280 head and the 1280->1000 FC. 53 MAC layers total.
///
/// Residual skips (stride-1 blocks with matching channels) become extra
/// dependence edges on the consumer of the block output.
///
/// # Example
///
/// ```
/// use herald_models::zoo::mobilenet_v2;
/// let m = mobilenet_v2();
/// assert_eq!(m.num_layers(), 53);
/// ```
pub fn mobilenet_v2() -> DnnModel {
    let mut b = ModelBuilder::new("MobileNetV2").chain(
        "conv1",
        LayerOp::Conv2d,
        LayerDims::conv(32, 3, 224, 224, 3, 3)
            .with_stride(2)
            .with_pad(1),
    );
    let mut y = 112u32;
    let mut in_ch = 32u32;
    // Producers of the current block-input tensor (block output + optional
    // residual source).
    let mut block_deps: Vec<LayerId> = vec![b.last_id().expect("conv1 added")];

    // (expansion t, output channels c, repeats n, first stride s) — the
    // MobileNetV2 paper's Table 2.
    let cfg: [(u32, u32, usize, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];

    let mut idx = 0usize;
    for (t, out, repeats, first_stride) in cfg {
        for rep in 0..repeats {
            idx += 1;
            let stride = if rep == 0 { first_stride } else { 1 };
            let mid = in_ch * t;
            let has_residual = stride == 1 && in_ch == out;
            let input_deps = block_deps.clone();

            // Expansion point-wise conv (omitted when t == 1).
            if t != 1 {
                b = b.layer_with_deps(
                    format!("b{idx}_expand"),
                    LayerOp::PointwiseConv,
                    LayerDims::conv(mid, in_ch, y, y, 1, 1),
                    &input_deps,
                );
            }
            // Depth-wise 3x3.
            let dw_dims = LayerDims::conv(mid, mid, y, y, 3, 3)
                .with_stride(stride)
                .with_pad(1);
            b = if t != 1 {
                b.chain(format!("b{idx}_dw"), LayerOp::DepthwiseConv, dw_dims)
            } else {
                b.layer_with_deps(
                    format!("b{idx}_dw"),
                    LayerOp::DepthwiseConv,
                    dw_dims,
                    &input_deps,
                )
            };
            y = y.div_ceil(stride);
            // Linear projection point-wise conv.
            b = b.chain(
                format!("b{idx}_project"),
                LayerOp::PointwiseConv,
                LayerDims::conv(out, mid, y, y, 1, 1),
            );
            let main = b.last_id().expect("project added");

            // Residual add: consumer depends on main and on the block input
            // producers (identity shortcut has no layer of its own).
            block_deps = if has_residual {
                let mut deps = vec![main];
                deps.extend(input_deps);
                deps
            } else {
                vec![main]
            };
            in_ch = out;
        }
    }

    // 1x1 head to 1280 channels, global pool, FC.
    b = b.layer_with_deps(
        "conv_head",
        LayerOp::PointwiseConv,
        LayerDims::conv(1280, 320, 7, 7, 1, 1),
        &block_deps,
    );
    b = b.chain("fc", LayerOp::Fc, LayerDims::fc(1000, 1280));
    b.build().expect("mobilenet_v2 definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerOp, ModelStats};

    #[test]
    fn v1_layer_count() {
        // 1 stem + 13 x 2 separable + 1 FC = 28.
        assert_eq!(mobilenet_v1().num_layers(), 28);
    }

    #[test]
    fn v1_macs_in_expected_range() {
        // MobileNetV1 is ~0.57 GMACs.
        let macs = mobilenet_v1().total_macs() as f64;
        assert!((4.0e8..7.0e8).contains(&macs), "got {macs}");
    }

    #[test]
    fn v2_layer_count() {
        // 1 stem + (2 + 16 x 3) blocks + head + FC = 53.
        assert_eq!(mobilenet_v2().num_layers(), 53);
    }

    #[test]
    fn v2_macs_in_expected_range() {
        // MobileNetV2 is ~0.3 GMACs.
        let macs = mobilenet_v2().total_macs() as f64;
        assert!((2.0e8..4.5e8).contains(&macs), "got {macs}");
    }

    #[test]
    fn v2_table1_max_ratio() {
        let s = ModelStats::for_model(&mobilenet_v2());
        // Table I: max 1280 (head output consumed by FC at 1x1).
        assert!((s.max_channel_activation_ratio - 1280.0).abs() < 1e-9);
    }

    #[test]
    fn v2_uses_all_three_conv_flavours() {
        let s = ModelStats::for_model(&mobilenet_v2());
        assert!(s.ops.contains(&LayerOp::Conv2d));
        assert!(s.ops.contains(&LayerOp::PointwiseConv));
        assert!(s.ops.contains(&LayerOp::DepthwiseConv));
    }

    #[test]
    fn v2_residual_block_has_extra_dep() {
        let m = mobilenet_v2();
        // Block 3 (24 -> 24, stride 1) has a residual; block 4's expand
        // depends on both b3_project and b2_project.
        let expand = m.layer_id("b4_expand").unwrap();
        let deps = m.predecessors(expand);
        assert!(deps.contains(&m.layer_id("b3_project").unwrap()));
        assert!(deps.contains(&m.layer_id("b2_project").unwrap()));
    }

    #[test]
    fn v2_depthwise_layers_have_matching_channels() {
        let m = mobilenet_v2();
        for layer in m.layers() {
            if layer.op() == LayerOp::DepthwiseConv {
                assert_eq!(layer.dims().k, layer.dims().c, "{}", layer.name());
            }
        }
    }

    #[test]
    fn v1_final_spatial_is_7() {
        let m = mobilenet_v1();
        let pw13 = m.layer(m.layer_id("pw13").unwrap());
        assert_eq!(pw13.out_y(), 7);
        assert_eq!(pw13.dims().k, 1024);
    }
}
