//! Focal-Length DepthNet — single-image depth estimation with focal-length
//! embedding (He, Wang, Hu, IEEE TIP 2018), used by the paper's AR/VR-B
//! workload.
//!
//! The cited network is a VGG-16-style encoder followed by two 4096-wide
//! fully-connected layers (the paper's text singles out "FC layer 2" with
//! 4096x4096 = 16.8M channel parallelism) and an up-convolutional decoder
//! that restores a dense depth map. Table I lists its operators as CONV2D,
//! FC and UPCONV with ratio min 0.013 and max 4096 — both reproduced here.

use crate::{DnnModel, LayerDims, LayerOp, ModelBuilder};

/// Focal-Length DepthNet: 13-conv VGG-16 encoder on 224x224x3, two
/// 4096-wide FCs, an FC re-projection to a 7x7x128 map, and a 4-level
/// up-convolutional decoder producing a 112x112 depth map. 25 MAC layers.
///
/// # Example
///
/// ```
/// use herald_models::zoo::focal_depthnet;
/// let m = focal_depthnet();
/// assert_eq!(m.num_layers(), 25);
/// ```
pub fn focal_depthnet() -> DnnModel {
    let mut b = ModelBuilder::new("Focal DepthNet");

    // VGG-16 encoder: (channels, convs-in-block, input spatial).
    let blocks: [(u32, usize, u32); 5] = [
        (64, 2, 224),
        (128, 2, 112),
        (256, 3, 56),
        (512, 3, 28),
        (512, 3, 14),
    ];
    let mut in_ch = 3u32;
    for (bi, (ch, convs, y)) in blocks.into_iter().enumerate() {
        for ci in 0..convs {
            b = b.chain(
                format!("conv{}_{}", bi + 1, ci + 1),
                LayerOp::Conv2d,
                LayerDims::conv(ch, in_ch, y, y, 3, 3).with_pad(1),
            );
            in_ch = ch;
        }
        // 2x2 max-pool between blocks (not a MAC layer).
    }

    // FC head. fc1 is encoded as a 7x7 valid conv over the pooled 7x7x512
    // map (the FC-as-conv form used throughout the zoo); fc2 is the paper's
    // "FC layer 2" with 4096x4096 weights.
    b = b.chain(
        "fc1",
        LayerOp::Conv2d,
        LayerDims::conv(4096, 512, 7, 7, 7, 7),
    );
    b = b.chain("fc2", LayerOp::Fc, LayerDims::fc(4096, 4096));
    // Re-projection to a coarse spatial map for the decoder (7x7x128).
    b = b.chain("fc3", LayerOp::Fc, LayerDims::fc(6272, 4096));

    // Up-convolutional decoder: 7 -> 14 -> 28 -> 56 -> 112, with a 3x3
    // refinement conv after each up-conv.
    let mut y = 7u32;
    let mut ch = 128u32;
    for level in 1..=4u32 {
        let out = ch / 2;
        b = b.chain(
            format!("up{level}"),
            LayerOp::TransposedConv,
            LayerDims::conv(out, ch, y, y, 2, 2).with_stride(2),
        );
        y *= 2;
        b = b.chain(
            format!("dec{level}_conv"),
            LayerOp::Conv2d,
            LayerDims::conv(out, out, y, y, 3, 3).with_pad(1),
        );
        ch = out;
    }
    // Final depth regression head.
    b = b.chain(
        "depth_head",
        LayerOp::PointwiseConv,
        LayerDims::conv(1, 8, 112, 112, 1, 1),
    );

    b.build().expect("focal_depthnet definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerOp, ModelStats};

    #[test]
    fn layer_count() {
        // 13 encoder + 3 FC + 4 x 2 decoder + 1 head = 25.
        assert_eq!(focal_depthnet().num_layers(), 25);
    }

    #[test]
    fn table1_ratios() {
        let s = ModelStats::for_model(&focal_depthnet());
        // Table I: min 0.013 (3/224), max 4096 (fc2 / fc3 read 4096-wide).
        assert!((s.min_channel_activation_ratio - 3.0 / 224.0).abs() < 1e-6);
        assert_eq!(s.max_channel_activation_ratio, 4096.0);
    }

    #[test]
    fn fc2_has_paper_quoted_channel_parallelism() {
        // The paper: "maximum channel parallelism in the workload is 16.8M
        // (FC layer 2, Focal Length DepthNet)" = 4096 x 4096.
        let m = focal_depthnet();
        let fc2 = m.layer(m.layer_id("fc2").unwrap());
        assert_eq!(
            u64::from(fc2.dims().k) * u64::from(fc2.dims().c),
            16_777_216
        );
    }

    #[test]
    fn ops_match_table1() {
        let s = ModelStats::for_model(&focal_depthnet());
        assert!(s.ops.contains(&LayerOp::Conv2d));
        assert!(s.ops.contains(&LayerOp::Fc));
        assert!(s.ops.contains(&LayerOp::TransposedConv));
        assert!(!s.ops.contains(&LayerOp::DepthwiseConv));
    }

    #[test]
    fn decoder_restores_112() {
        let m = focal_depthnet();
        let head = m.layer(m.layer_id("depth_head").unwrap());
        assert_eq!(head.out_y(), 112);
        assert_eq!(head.dims().k, 1);
    }
}
