//! GNMT — Google's 8-layer LSTM sequence-to-sequence translation model, the
//! RNN member of the MLPerf inference suite used by the paper's MLPerf
//! workload.
//!
//! An analytical dense-tensor cost model consumes GEMM shapes, so each LSTM
//! layer is encoded as its two gate GEMMs (input-to-hidden and
//! hidden-to-hidden, `4H x H` each) with the sequence length folded into
//! the GEMM row dimension — the standard batched-inference formulation.
//! Attention contributes two `H x H` GEMMs and decoding ends with the
//! `V x H` vocabulary projection.

use crate::{DnnModel, LayerDims, LayerOp, ModelBuilder};

/// Hidden width of GNMT.
const HIDDEN: u32 = 1024;
/// Gate GEMM output width (four LSTM gates).
const GATES: u32 = 4 * HIDDEN;
/// Average decoded sequence length folded into the GEMM row dimension.
const SEQ_LEN: u32 = 25;
/// Target vocabulary size of the MLPerf GNMT reference.
const VOCAB: u32 = 32_000;

/// GNMT: 8 encoder LSTM layers, 8 decoder LSTM layers (two gate GEMMs
/// each), 2 attention GEMMs and the vocabulary projection — 35 FC/GEMM
/// layers with extreme channel-activation ratios (no spatial dimension at
/// all), the polar opposite of UNet in the workload mix.
///
/// # Example
///
/// ```
/// use herald_models::zoo::gnmt;
/// let m = gnmt();
/// assert_eq!(m.num_layers(), 35);
/// ```
pub fn gnmt() -> DnnModel {
    let mut b = ModelBuilder::new("GNMT");

    for i in 1..=8u32 {
        b = b.chain(
            format!("enc{i}_ih"),
            LayerOp::Fc,
            LayerDims::gemm(GATES, HIDDEN, SEQ_LEN),
        );
        b = b.chain(
            format!("enc{i}_hh"),
            LayerOp::Fc,
            LayerDims::gemm(GATES, HIDDEN, SEQ_LEN),
        );
    }

    // Attention: score and context projections.
    b = b.chain(
        "attn_query",
        LayerOp::Fc,
        LayerDims::gemm(HIDDEN, HIDDEN, SEQ_LEN),
    );
    b = b.chain(
        "attn_context",
        LayerOp::Fc,
        LayerDims::gemm(HIDDEN, HIDDEN, SEQ_LEN),
    );

    for i in 1..=8u32 {
        // Decoder layer 1 consumes [embedding; attention context].
        let in_width = if i == 1 { 2 * HIDDEN } else { HIDDEN };
        b = b.chain(
            format!("dec{i}_ih"),
            LayerOp::Fc,
            LayerDims::gemm(GATES, in_width, SEQ_LEN),
        );
        b = b.chain(
            format!("dec{i}_hh"),
            LayerOp::Fc,
            LayerDims::gemm(GATES, HIDDEN, SEQ_LEN),
        );
    }

    b = b.chain(
        "vocab_proj",
        LayerOp::Fc,
        LayerDims::gemm(VOCAB, HIDDEN, SEQ_LEN),
    );
    b.build().expect("gnmt definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStats;

    #[test]
    fn layer_count() {
        // 16 encoder + 2 attention + 16 decoder + 1 projection = 35.
        assert_eq!(gnmt().num_layers(), 35);
    }

    #[test]
    fn all_layers_are_gemms() {
        for l in gnmt().layers() {
            assert_eq!(l.op(), crate::LayerOp::Fc, "{}", l.name());
            assert_eq!((l.dims().r, l.dims().s), (1, 1));
        }
    }

    #[test]
    fn gate_gemm_shape() {
        let m = gnmt();
        let l = m.layer(m.layer_id("enc1_ih").unwrap());
        assert_eq!((l.dims().k, l.dims().c, l.dims().y), (4096, 1024, 25));
        // Weights reused across all 25 timesteps.
        assert_eq!(l.macs(), 4096 * 1024 * 25);
    }

    #[test]
    fn vocab_projection_dominates_macs() {
        let m = gnmt();
        let proj = m.layer(m.layer_id("vocab_proj").unwrap());
        assert!(proj.macs() > m.total_macs() / 10);
    }

    #[test]
    fn ratios_are_channel_heavy() {
        let s = ModelStats::for_model(&gnmt());
        // GEMM rows fold the sequence, so C/Y = 1024/25 ~ 41 everywhere.
        assert!(s.min_channel_activation_ratio > 30.0);
        assert!(s.max_channel_activation_ratio < 100.0);
    }
}
