//! BR-Q HandposeNet — the branched global-to-local hand-pose regression
//! network of Madadi et al. (arXiv:1705.09606), as used by the paper's
//! AR/VR-B workload.
//!
//! The cited work describes a convolutional trunk on a depth image followed
//! by a tree of per-finger fully-connected branches. The exact layer table
//! is not published; this encoding follows the described structure and
//! matches the paper's Table I statistics (ratio min ~0.016, median and max
//! 1024, ops CONV2D + FC).

use crate::{DnnModel, LayerDims, LayerOp, ModelBuilder};

/// BR-Q HandposeNet: a 5-conv trunk on a 192x192x3 input, a convolutional
/// global-feature layer, and six branches (five fingers + palm) of
/// 1024-wide FC pairs with per-branch joint-regression heads. 24 MAC layers.
///
/// # Example
///
/// ```
/// use herald_models::zoo::brq_handpose;
/// let m = brq_handpose();
/// assert_eq!(m.num_layers(), 24);
/// ```
pub fn brq_handpose() -> DnnModel {
    let mut b = ModelBuilder::new("BR-Q Handpose");

    // Convolutional trunk: stride-2 convs halve the resolution each step.
    let trunk: [(u32, u32, u32, u32); 5] = [
        // (out channels, in channels, input y, filter)
        (32, 3, 192, 5),
        (64, 32, 96, 3),
        (128, 64, 48, 3),
        (256, 128, 24, 3),
        (512, 256, 12, 3),
    ];
    for (i, (k, c, y, f)) in trunk.into_iter().enumerate() {
        b = b.chain(
            format!("conv{}", i + 1),
            LayerOp::Conv2d,
            LayerDims::conv(k, c, y, y, f, f)
                .with_stride(2)
                .with_pad(f / 2),
        );
    }

    // Global feature: a 6x6 valid conv collapsing the 6x6x512 map into a
    // 1024-wide vector (the FC-as-conv encoding keeps Table I's max ratio at
    // the 1024-wide branch FCs rather than an artificial 18432).
    b = b.chain(
        "global_fc",
        LayerOp::Conv2d,
        LayerDims::conv(1024, 512, 6, 6, 6, 6),
    );
    let global = b.last_id().expect("global_fc added");

    // Six branches x (fc1 -> fc2 -> joints).
    for branch in ["thumb", "index", "middle", "ring", "pinky", "palm"] {
        b = b.layer_with_deps(
            format!("{branch}_fc1"),
            LayerOp::Fc,
            LayerDims::fc(1024, 1024),
            &[global],
        );
        b = b.chain(
            format!("{branch}_fc2"),
            LayerOp::Fc,
            LayerDims::fc(1024, 1024),
        );
        // 4 joints x 3 coordinates per branch.
        b = b.chain(
            format!("{branch}_joints"),
            LayerOp::Fc,
            LayerDims::fc(12, 1024),
        );
    }

    b.build().expect("brq_handpose definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerOp, ModelStats};

    #[test]
    fn layer_count() {
        // 5 trunk + 1 global + 6 x 3 branch layers = 24.
        assert_eq!(brq_handpose().num_layers(), 24);
    }

    #[test]
    fn table1_ratios() {
        let s = ModelStats::for_model(&brq_handpose());
        // Table I: min 0.016 (3/192), median 1024, max 1024.
        assert!((s.min_channel_activation_ratio - 3.0 / 192.0).abs() < 1e-6);
        assert_eq!(s.median_channel_activation_ratio, 1024.0);
        assert_eq!(s.max_channel_activation_ratio, 1024.0);
    }

    #[test]
    fn ops_are_conv_and_fc_only() {
        let s = ModelStats::for_model(&brq_handpose());
        assert!(s.ops.contains(&LayerOp::Conv2d));
        assert!(s.ops.contains(&LayerOp::Fc));
        assert!(!s.ops.contains(&LayerOp::DepthwiseConv));
        assert!(!s.ops.contains(&LayerOp::TransposedConv));
    }

    #[test]
    fn branches_are_parallel() {
        let m = brq_handpose();
        // Every branch fc1 depends only on the shared global feature, so
        // branches can be scheduled in parallel on different
        // sub-accelerators.
        let global = m.layer_id("global_fc").unwrap();
        for branch in ["thumb", "index", "middle", "ring", "pinky", "palm"] {
            let fc1 = m.layer_id(&format!("{branch}_fc1")).unwrap();
            assert_eq!(m.predecessors(fc1), &[global]);
        }
    }

    #[test]
    fn trunk_halves_resolution_each_conv() {
        let m = brq_handpose();
        let c5 = m.layer(m.layer_id("conv5").unwrap());
        assert_eq!(c5.out_y(), 6);
    }
}
