//! UNet [Ronneberger et al., MICCAI 2015] — the original valid-padding
//! 572x572 biomedical segmentation network, used by the paper for hand
//! tracking.

use crate::{DnnModel, LayerDims, LayerId, LayerOp, ModelBuilder};

/// UNet: 4-level contracting path, 1024-channel bottleneck, 4-level
/// expanding path with 2x2 up-convolutions and skip concatenations, and a
/// final 1x1 conv to 2 classes. 23 MAC layers (18 convs, 4 up-convs, 1
/// point-wise head).
///
/// All convolutions are *valid* (unpadded), so spatial sizes follow the
/// original paper exactly: 572 -> 570 -> 568 -> (pool) 284 ... down to the
/// 28x28 bottleneck, then back up to the 388x388 output. Concatenations
/// appear as two-predecessor dependence edges on the first conv after each
/// up-convolution.
///
/// # Example
///
/// ```
/// use herald_models::zoo::unet;
/// let m = unet();
/// assert_eq!(m.num_layers(), 23);
/// // The decoder's first conv after upconv4 concatenates the level-4 skip.
/// let cat = m.layer_id("dec4_conv1").unwrap();
/// assert_eq!(m.predecessors(cat).len(), 2);
/// ```
pub fn unet() -> DnnModel {
    let mut b = ModelBuilder::new("UNet");

    // --- Contracting path -------------------------------------------------
    // Level channel plan: 64, 128, 256, 512 with two valid 3x3 convs per
    // level, then 2x2 max-pool (not a MAC layer).
    let mut y = 572u32;
    let mut in_ch = 1u32;
    // Skip producers: the second conv of each encoder level.
    let mut skips: Vec<(LayerId, u32, u32)> = Vec::new();

    for (level, ch) in [(1u32, 64u32), (2, 128), (3, 256), (4, 512)] {
        b = b.chain(
            format!("enc{level}_conv1"),
            LayerOp::Conv2d,
            LayerDims::conv(ch, in_ch, y, y, 3, 3),
        );
        y -= 2;
        b = b.chain(
            format!("enc{level}_conv2"),
            LayerOp::Conv2d,
            LayerDims::conv(ch, ch, y, y, 3, 3),
        );
        y -= 2;
        skips.push((b.last_id().expect("enc conv2 added"), ch, y));
        // Max-pool 2x2.
        y /= 2;
        in_ch = ch;
    }

    // --- Bottleneck --------------------------------------------------------
    b = b.chain(
        "bottleneck_conv1",
        LayerOp::Conv2d,
        LayerDims::conv(1024, 512, y, y, 3, 3),
    );
    y -= 2;
    b = b.chain(
        "bottleneck_conv2",
        LayerOp::Conv2d,
        LayerDims::conv(1024, 1024, y, y, 3, 3),
    );
    y -= 2;
    let mut up_in = 1024u32;

    // --- Expanding path ----------------------------------------------------
    for (level, ch) in [(4u32, 512u32), (3, 256), (2, 128), (1, 64)] {
        // 2x2 up-convolution doubles the spatial size and halves channels.
        b = b.chain(
            format!("dec{level}_upconv"),
            LayerOp::TransposedConv,
            LayerDims::conv(ch, up_in, y, y, 2, 2).with_stride(2),
        );
        y *= 2;
        let up_id = b.last_id().expect("upconv added");
        // Concatenate the (cropped) encoder skip: the next conv depends on
        // both the up-conv and the skip producer, and reads 2*ch channels.
        let (skip_id, skip_ch, _skip_y) = skips[(level - 1) as usize];
        debug_assert_eq!(skip_ch, ch);
        b = b.layer_with_deps(
            format!("dec{level}_conv1"),
            LayerOp::Conv2d,
            LayerDims::conv(ch, 2 * ch, y, y, 3, 3),
            &[up_id, skip_id],
        );
        y -= 2;
        b = b.chain(
            format!("dec{level}_conv2"),
            LayerOp::Conv2d,
            LayerDims::conv(ch, ch, y, y, 3, 3),
        );
        y -= 2;
        up_in = ch;
    }

    // --- 1x1 segmentation head ---------------------------------------------
    b = b.chain(
        "head",
        LayerOp::PointwiseConv,
        LayerDims::conv(2, 64, y, y, 1, 1),
    );
    b.build().expect("unet definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStats;

    #[test]
    fn layer_count() {
        assert_eq!(unet().num_layers(), 23);
    }

    #[test]
    fn output_is_388x388x2() {
        let m = unet();
        let head = m.layer(m.layer_id("head").unwrap());
        assert_eq!(head.out_y(), 388);
        assert_eq!(head.dims().k, 2);
    }

    #[test]
    fn bottleneck_matches_paper() {
        let m = unet();
        let bn = m.layer(m.layer_id("bottleneck_conv2").unwrap());
        // Table I max ratio 34.133 = 1024 channels / 30 rows.
        assert_eq!(bn.dims().c, 1024);
        assert_eq!(bn.dims().y, 30);
        let s = ModelStats::for_model(&m);
        assert!((s.max_channel_activation_ratio - 1024.0 / 30.0).abs() < 1e-6);
    }

    #[test]
    fn table1_min_ratio() {
        let s = ModelStats::for_model(&unet());
        // Table I: min 0.002 (1 / 572).
        assert!((s.min_channel_activation_ratio - 1.0 / 572.0).abs() < 1e-6);
    }

    #[test]
    fn concat_edges_reach_encoder() {
        let m = unet();
        let dec1 = m.layer_id("dec1_conv1").unwrap();
        let deps = m.predecessors(dec1);
        assert!(deps.contains(&m.layer_id("enc1_conv2").unwrap()));
        assert!(deps.contains(&m.layer_id("dec1_upconv").unwrap()));
    }

    #[test]
    fn upconvs_double_spatial() {
        let m = unet();
        let up = m.layer(m.layer_id("dec4_upconv").unwrap());
        assert_eq!(up.out_y(), 2 * up.dims().y);
    }

    #[test]
    fn decoder_convs_read_concatenated_channels() {
        let m = unet();
        let c = m.layer(m.layer_id("dec3_conv1").unwrap());
        assert_eq!(c.dims().c, 512); // 256 up-conv + 256 skip.
        assert_eq!(c.dims().k, 256);
    }

    #[test]
    fn total_macs_dominated_by_decoder() {
        // UNet at 572x572 is tens of GMACs; sanity-check the magnitude.
        let macs = unet().total_macs() as f64;
        assert!((2.0e10..2.0e11).contains(&macs), "got {macs}");
    }
}
