//! A decoder-only transformer block stack at one autoregressive step.
//!
//! The zoo's 2021 set (Table I/II) has no attention workloads; this
//! model opens that axis. It encodes **one token** of a GPT-style
//! decoder as the GEMMs an analytical cost model sees, parameterized by
//! the KV-cache length `kv_len` (how many past tokens the new token
//! attends over). Per-block, with hidden size `H` and `L = kv_len`:
//!
//! | Layer | GEMM shape `(k, c, m)` | Role |
//! |-------|------------------------|------|
//! | `qkv`     | `(3H, H, 1)` | fused Q/K/V projection of the new token |
//! | `score`   | `(L, H, 1)`  | attention scores `q . K^T` over the cache |
//! | `context` | `(H, L, 1)`  | context `scores . V` over the cache |
//! | `out`     | `(H, H, 1)`  | attention output projection |
//! | `ffn_up`  | `(4H, H, 1)` | FFN expansion |
//! | `ffn_down`| `(H, 4H, 1)` | FFN contraction |
//!
//! Only `score` and `context` depend on `L`, so per-token cost grows
//! linearly in the KV length — exactly the autoregressive cost curve the
//! decode-stream scenarios exercise. Every layer is stamped with
//! `seq_position = kv_len` so two cache-length variants of the stack can
//! never alias in a schedule memo even where their GEMM shapes coincide.
//!
//! Unlike the fixed Table I networks, this model is *parameterized* and
//! therefore not part of [`super::all_models`].

use crate::{DnnModel, LayerDims, LayerOp, ModelBuilder};

/// Hidden size of the decoder (a GPT-2-medium-class width that keeps
/// fast-mode scheduling snappy while the FFN GEMMs still dominate).
pub const TRANSFORMER_HIDDEN: u32 = 1024;

/// Decoder blocks in the stack.
pub const TRANSFORMER_BLOCKS: usize = 4;

/// One autoregressive decode step of a decoder-only transformer with a
/// KV cache of `kv_len` past tokens (see the [module docs](self)).
///
/// # Panics
///
/// Panics if `kv_len` is zero.
#[must_use]
pub fn transformer_decoder(kv_len: u32) -> DnnModel {
    assert!(kv_len > 0, "a decode step attends over at least one token");
    let h = TRANSFORMER_HIDDEN;
    let mut b = ModelBuilder::new(format!("TransformerDecoder-kv{kv_len}"));
    for blk in 0..TRANSFORMER_BLOCKS {
        b = b
            .chain(
                format!("blk{blk}_qkv"),
                LayerOp::Fc,
                LayerDims::gemm(3 * h, h, 1),
            )
            .chain(
                format!("blk{blk}_score"),
                LayerOp::Fc,
                LayerDims::gemm(kv_len, h, 1),
            )
            .chain(
                format!("blk{blk}_context"),
                LayerOp::Fc,
                LayerDims::gemm(h, kv_len, 1),
            )
            .chain(
                format!("blk{blk}_out"),
                LayerOp::Fc,
                LayerDims::gemm(h, h, 1),
            )
            .chain(
                format!("blk{blk}_ffn_up"),
                LayerOp::Fc,
                LayerDims::gemm(4 * h, h, 1),
            )
            .chain(
                format!("blk{blk}_ffn_down"),
                LayerOp::Fc,
                LayerDims::gemm(h, 4 * h, 1),
            );
    }
    b.build()
        .expect("decoder stack is a valid chain")
        .map_layers(|l| l.with_seq_position(kv_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_is_all_gemms_with_six_layers_per_block() {
        let m = transformer_decoder(64);
        assert_eq!(m.num_layers(), 6 * TRANSFORMER_BLOCKS);
        for (_, l) in m.iter() {
            assert_eq!(l.op(), LayerOp::Fc);
            assert_eq!(l.seq_position(), 64);
            assert_eq!(l.density(), 1.0);
        }
    }

    #[test]
    fn only_attention_layers_grow_with_the_kv_cache() {
        let short = transformer_decoder(64);
        let long = transformer_decoder(512);
        for (id, l) in short.iter() {
            let other = long.layer(id);
            let grows = l.name().contains("score") || l.name().contains("context");
            assert_eq!(
                other.macs() > l.macs(),
                grows,
                "{}: {} vs {}",
                l.name(),
                l.macs(),
                other.macs()
            );
        }
    }

    #[test]
    fn per_token_macs_are_monotone_in_kv_length() {
        let mut prev = 0u64;
        for kv in [1u32, 16, 64, 256, 1024] {
            let macs = transformer_decoder(kv).total_macs();
            assert!(macs > prev, "kv={kv}: {macs} <= {prev}");
            prev = macs;
        }
    }

    #[test]
    fn variants_are_named_and_stamped_by_cache_length() {
        let m = transformer_decoder(128);
        assert_eq!(m.name(), "TransformerDecoder-kv128");
        assert_ne!(transformer_decoder(128), transformer_decoder(129));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_cache_rejected() {
        let _ = transformer_decoder(0);
    }
}
