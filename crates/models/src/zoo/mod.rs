//! Model zoo: the DNNs used by the paper's evaluation workloads
//! (Tables I and II).
//!
//! All models encode the *layer shapes and operators* of the cited
//! networks — the only information an analytical accelerator cost model
//! consumes. Non-MAC glue (pooling, activations, element-wise adds) is
//! folded into the surrounding layer shapes; skip connections and
//! concatenations appear as extra dependence edges.
//!
//! | Constructor | Network | Paper role |
//! |-------------|---------|-----------|
//! | [`resnet50`] | ResNet-50 | object classification (AR/VR, MLPerf) |
//! | [`mobilenet_v2`] | MobileNetV2 | object detection (AR/VR) |
//! | [`mobilenet_v1`] | MobileNetV1 | MLPerf classification |
//! | [`unet`] | UNet | hand tracking / segmentation (AR/VR) |
//! | [`brq_handpose`] | BR-Q HandposeNet | hand pose estimation (AR/VR-B) |
//! | [`focal_depthnet`] | Focal-Length DepthNet | depth estimation (AR/VR-B) |
//! | [`ssd_resnet34`] | SSD-ResNet34 (1200x1200) | MLPerf detection (large) |
//! | [`ssd_mobilenet_v1`] | SSD-MobileNetV1 (300x300) | MLPerf detection (small) |
//! | [`gnmt`] | GNMT (8-layer LSTM seq2seq) | MLPerf translation |
//! | [`transformer_decoder`] | decoder-only transformer (per-token, KV-parameterized) | transformer-era extension |

mod depthnet;
mod gnmt;
mod handpose;
mod mobilenet;
mod resnet;
mod ssd;
mod transformer;
mod unet;

pub use depthnet::focal_depthnet;
pub use gnmt::gnmt;
pub use handpose::brq_handpose;
pub use mobilenet::{mobilenet_v1, mobilenet_v2};
pub use resnet::{resnet34_backbone, resnet50};
pub use ssd::{ssd_mobilenet_v1, ssd_resnet34};
pub use transformer::{transformer_decoder, TRANSFORMER_BLOCKS, TRANSFORMER_HIDDEN};
pub use unet::unet;

/// All zoo models, for exhaustive tests and the Table I reproduction.
/// [`transformer_decoder`] is parameterized by KV length and therefore
/// not included here.
pub fn all_models() -> Vec<crate::DnnModel> {
    vec![
        resnet50(),
        mobilenet_v2(),
        mobilenet_v1(),
        unet(),
        brq_handpose(),
        focal_depthnet(),
        ssd_resnet34(),
        ssd_mobilenet_v1(),
        gnmt(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStats;

    #[test]
    fn all_models_build_and_are_nonempty() {
        for m in all_models() {
            assert!(m.num_layers() > 0, "{} is empty", m.name());
            assert!(m.total_macs() > 0, "{} has zero MACs", m.name());
        }
    }

    #[test]
    fn all_models_have_unique_names() {
        let models = all_models();
        let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), models.len());
    }

    #[test]
    fn dependences_point_backwards() {
        for m in all_models() {
            for (id, _) in m.iter() {
                for &p in m.predecessors(id) {
                    assert!(p < id, "{}: {:?} depends on later {:?}", m.name(), id, p);
                }
            }
        }
    }

    #[test]
    fn every_nonfirst_layer_has_a_predecessor() {
        // All zoo networks are connected graphs: only the entry layer may
        // have no dependence.
        for m in all_models() {
            for (id, layer) in m.iter() {
                if id.0 > 0 {
                    assert!(
                        !m.predecessors(id).is_empty(),
                        "{}: layer {} ({}) is disconnected",
                        m.name(),
                        id,
                        layer.name()
                    );
                }
            }
        }
    }

    #[test]
    fn table1_ratio_spread_is_extreme() {
        // The paper quotes a 315076x spread across AR/VR models; across our
        // zoo the spread must likewise be >= 5 orders of magnitude.
        let models = [
            resnet50(),
            mobilenet_v2(),
            unet(),
            brq_handpose(),
            focal_depthnet(),
        ];
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for m in &models {
            let s = ModelStats::for_model(m);
            min = min.min(s.min_channel_activation_ratio);
            max = max.max(s.max_channel_activation_ratio);
        }
        assert!(max / min > 1e5, "spread {} too small", max / min);
    }
}
