//! MLPerf inference detection models: SSD-ResNet34 (1200x1200, "SSD-large")
//! and SSD-MobileNetV1 (300x300, "SSD-small") [Mattson et al., MLPerf].

use super::mobilenet::build_mobilenet_v1;
use super::resnet::resnet34_stem;
use crate::{DnnModel, LayerDims, LayerId, LayerOp, ModelBuilder};

/// Number of detection feature maps in both SSD variants.
const NUM_FEATURE_MAPS: usize = 6;

/// Appends the SSD extra feature layers and detection heads shared by both
/// variants.
///
/// `maps` describes the pyramid: `(producer, channels, spatial)` for the
/// backbone output followed by `(channels, spatial)` plans for the extra
/// layers (each built as a 1x1 squeeze + strided 3x3 conv). `classes` is 81
/// for COCO; `anchors` the per-cell anchor count.
fn append_ssd_head(
    mut b: ModelBuilder,
    backbone_out: LayerId,
    backbone_ch: u32,
    backbone_y: u32,
    extras: &[(u32, u32)],
    classes: u32,
    anchors: u32,
) -> ModelBuilder {
    let mut maps: Vec<(LayerId, u32, u32)> = vec![(backbone_out, backbone_ch, backbone_y)];
    let mut prev = backbone_out;
    let mut in_ch = backbone_ch;
    let mut y = backbone_y;

    for (i, &(ch, y_out)) in extras.iter().enumerate() {
        let n = i + 1;
        // 1x1 squeeze to half the target channels.
        b = b.layer_with_deps(
            format!("extra{n}_pw"),
            LayerOp::PointwiseConv,
            LayerDims::conv(ch / 2, in_ch, y, y, 1, 1),
            &[prev],
        );
        // Strided 3x3 expansion producing the next pyramid level. The
        // stride is whatever ratio the MLPerf reference uses between
        // adjacent maps; encode it via explicit output spatial size.
        let stride = y.div_ceil(y_out).max(1);
        b = b.chain(
            format!("extra{n}_conv"),
            LayerOp::Conv2d,
            LayerDims::conv(ch, ch / 2, y, y, 3, 3)
                .with_stride(stride)
                .with_pad(1),
        );
        prev = b.last_id().expect("extra conv added");
        in_ch = ch;
        y = y_out;
        maps.push((prev, ch, y));
    }
    debug_assert_eq!(maps.len(), NUM_FEATURE_MAPS);

    // Detection heads: one localization (4 coords) and one classification
    // (`classes`) 3x3 conv per pyramid level.
    for (i, &(src, ch, y)) in maps.iter().enumerate() {
        b = b.layer_with_deps(
            format!("loc{i}"),
            LayerOp::Conv2d,
            LayerDims::conv(4 * anchors, ch, y, y, 3, 3).with_pad(1),
            &[src],
        );
        b = b.layer_with_deps(
            format!("cls{i}"),
            LayerOp::Conv2d,
            LayerDims::conv(classes * anchors, ch, y, y, 3, 3).with_pad(1),
            &[src],
        );
    }
    b
}

/// SSD-ResNet34 at 1200x1200 (MLPerf "SSD-large"): ResNet-34 stages 1-3 as
/// the backbone (output 256x75x75), five extra feature levels down to 3x3,
/// and per-level localization/classification heads. 51 MAC layers.
///
/// # Example
///
/// ```
/// use herald_models::zoo::ssd_resnet34;
/// let m = ssd_resnet34();
/// assert_eq!(m.num_layers(), 51);
/// ```
pub fn ssd_resnet34() -> DnnModel {
    let (b, backbone_deps, ch, y) = resnet34_stem(1200);
    debug_assert_eq!((ch, y), (256, 75));
    let backbone_out = *backbone_deps.first().expect("backbone has output");
    // Pyramid: 75 -> 38 -> 19 -> 10 -> 5 -> 3.
    let extras: [(u32, u32); 5] = [(512, 38), (512, 19), (256, 10), (256, 5), (256, 3)];
    let b = append_ssd_head(b, backbone_out, ch, y, &extras, 81, 4);
    b.build().expect("ssd_resnet34 definition is valid")
}

/// SSD-MobileNetV1 at 300x300 (MLPerf "SSD-small"): MobileNetV1 backbone
/// (output 1024x10x10) plus five extra levels down to 1x1 and per-level
/// heads. 49 MAC layers.
///
/// # Example
///
/// ```
/// use herald_models::zoo::ssd_mobilenet_v1;
/// let m = ssd_mobilenet_v1();
/// assert_eq!(m.num_layers(), 49);
/// ```
pub fn ssd_mobilenet_v1() -> DnnModel {
    let (b, feat, ch, y) = build_mobilenet_v1("SSD-MobileNetV1", 300, false);
    debug_assert_eq!((ch, y), (1024, 10));
    // Pyramid: 10 -> 5 -> 3 -> 2 -> 1 (plus the 19x19 level MLPerf taps from
    // inside the backbone; we approximate with the five post-backbone maps
    // plus the backbone output itself to keep six levels).
    let extras: [(u32, u32); 5] = [(512, 5), (256, 3), (256, 2), (128, 1), (128, 1)];
    let b = append_ssd_head(b, feat, ch, y, &extras, 91, 3);
    b.build().expect("ssd_mobilenet_v1 definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStats;

    #[test]
    fn ssd_resnet34_layer_count() {
        // 29 backbone + 5 x 2 extras + 6 x 2 heads = 51.
        assert_eq!(ssd_resnet34().num_layers(), 51);
    }

    #[test]
    fn ssd_mobilenet_layer_count() {
        // 27 backbone (no FC) + 5 x 2 extras + 6 x 2 heads = 49... the
        // MobileNet body is 1 stem + 26 separable layers = 27.
        assert_eq!(ssd_mobilenet_v1().num_layers(), 49);
    }

    #[test]
    fn ssd_resnet34_is_large() {
        // SSD-large at 1200x1200 is ~100 GMACs — by far the heaviest MLPerf
        // member, which is what stresses the schedulers.
        let macs = ssd_resnet34().total_macs() as f64;
        assert!(macs > 5.0e10, "got {macs}");
    }

    #[test]
    fn heads_fan_out_from_shared_maps() {
        let m = ssd_resnet34();
        let loc0 = m.layer_id("loc0").unwrap();
        let cls0 = m.layer_id("cls0").unwrap();
        // Both heads of level 0 read the backbone output.
        assert_eq!(m.predecessors(loc0), m.predecessors(cls0));
    }

    #[test]
    fn pyramid_spatial_sizes_decrease() {
        let m = ssd_resnet34();
        let mut last = u32::MAX;
        for i in 1..=5 {
            let conv = m.layer(m.layer_id(&format!("extra{i}_conv")).unwrap());
            assert!(conv.out_y() <= last);
            last = conv.out_y();
        }
        assert_eq!(last, 3);
    }

    #[test]
    fn stats_are_finite() {
        for m in [ssd_resnet34(), ssd_mobilenet_v1()] {
            let s = ModelStats::for_model(&m);
            assert!(s.max_channel_activation_ratio.is_finite());
            assert!(s.min_channel_activation_ratio > 0.0);
        }
    }
}
