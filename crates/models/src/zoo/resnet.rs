//! ResNet-50 [He et al., CVPR 2016] and the ResNet-34 backbone used by
//! MLPerf's SSD-large detector.

use crate::{DnnModel, LayerDims, LayerId, LayerOp, ModelBuilder};

/// ResNet-50 for 224x224x3 ImageNet classification.
///
/// 54 MAC layers: `conv1`, 16 bottleneck blocks (3 convs each), 4 projection
/// shortcuts (one per stage) and the final 2048->1000 FC. Element-wise
/// residual adds become dependence edges: the first layer after each block
/// depends on the block's last convolution *and* the projection shortcut
/// when one exists (identity shortcuts are covered transitively through the
/// main path).
///
/// # Example
///
/// ```
/// use herald_models::zoo::resnet50;
/// let m = resnet50();
/// assert_eq!(m.num_layers(), 54);
/// // Final FC consumes the 2048-channel stage-5 output.
/// let fc = m.layer(m.layer_id("fc").unwrap());
/// assert_eq!((fc.dims().k, fc.dims().c), (1000, 2048));
/// ```
pub fn resnet50() -> DnnModel {
    let mut b = ModelBuilder::new("Resnet50").chain(
        "conv1",
        LayerOp::Conv2d,
        LayerDims::conv(64, 3, 224, 224, 7, 7)
            .with_stride(2)
            .with_pad(3),
    );
    // Max-pool 3x3/2 reduces 112 -> 56 before stage 2 (pooling itself is not
    // a MAC layer).
    let mut block_deps: Vec<LayerId> = vec![b.last_id().expect("conv1 added")];
    let mut in_ch = 64u32;
    let mut y = 56u32;

    // (stage index, mid channels, out channels, blocks, first-block stride)
    let stages: [(u32, u32, u32, usize, u32); 4] = [
        (2, 64, 256, 3, 1),
        (3, 128, 512, 4, 2),
        (4, 256, 1024, 6, 2),
        (5, 512, 2048, 3, 2),
    ];

    for (stage, mid, out, blocks, first_stride) in stages {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            let y_out = y / stride;
            let prefix = format!("res{stage}{}", (b'a' + block as u8) as char);

            // 1x1 reduce: consumes the previous residual-add output, i.e.
            // depends on every producer feeding that add.
            b = b.layer_with_deps(
                format!("{prefix}_pw1"),
                LayerOp::PointwiseConv,
                LayerDims::conv(mid, in_ch, y, y, 1, 1),
                &block_deps,
            );
            // 3x3 spatial (carries the stride).
            b = b.chain(
                format!("{prefix}_conv"),
                LayerOp::Conv2d,
                LayerDims::conv(mid, mid, y, y, 3, 3)
                    .with_stride(stride)
                    .with_pad(1),
            );
            // 1x1 expand.
            b = b.chain(
                format!("{prefix}_pw2"),
                LayerOp::PointwiseConv,
                LayerDims::conv(out, mid, y_out, y_out, 1, 1),
            );
            let main = b.last_id().expect("pw2 added");

            // Projection shortcut on the first block of each stage; identity
            // shortcuts need no extra edge because the main path already
            // depends on the block input transitively.
            block_deps = if block == 0 {
                b = b.layer_with_deps(
                    format!("{prefix}_proj"),
                    LayerOp::PointwiseConv,
                    LayerDims::conv(out, in_ch, y, y, 1, 1).with_stride(stride),
                    &block_deps,
                );
                vec![main, b.last_id().expect("proj added")]
            } else {
                vec![main]
            };
            in_ch = out;
            y = y_out;
        }
    }

    // Global average pool 7x7 -> 1x1 (not a MAC layer), then FC.
    b = b.layer_with_deps("fc", LayerOp::Fc, LayerDims::fc(1000, 2048), &block_deps);
    b.build().expect("resnet50 definition is valid")
}

/// The ResNet-34 backbone stem (basic blocks, two 3x3 convs each) at a given
/// input resolution, used by [`crate::zoo::ssd_resnet34`].
///
/// Returns the builder positioned after the stage-3 output together with the
/// current feature-map metadata `(producers, channels, spatial)`.
pub(crate) fn resnet34_stem(input_y: u32) -> (ModelBuilder, Vec<LayerId>, u32, u32) {
    let mut b = ModelBuilder::new("SSD-Resnet34").chain(
        "conv1",
        LayerOp::Conv2d,
        LayerDims::conv(64, 3, input_y, input_y, 7, 7)
            .with_stride(2)
            .with_pad(3),
    );
    let mut block_deps: Vec<LayerId> = vec![b.last_id().expect("conv1 added")];
    // Max-pool /2.
    let mut y = input_y / 4;
    let mut in_ch = 64u32;

    // (stage, channels, blocks, first stride). MLPerf SSD-R34 keeps stages
    // 1-3 of the backbone (stage 4 is replaced by detection layers).
    let stages: [(u32, u32, usize, u32); 3] = [(1, 64, 3, 1), (2, 128, 4, 2), (3, 256, 6, 2)];
    for (stage, ch, blocks, first_stride) in stages {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            let y_out = y / stride;
            let prefix = format!("s{stage}b{block}");
            b = b.layer_with_deps(
                format!("{prefix}_conv1"),
                LayerOp::Conv2d,
                LayerDims::conv(ch, in_ch, y, y, 3, 3)
                    .with_stride(stride)
                    .with_pad(1),
                &block_deps,
            );
            b = b.chain(
                format!("{prefix}_conv2"),
                LayerOp::Conv2d,
                LayerDims::conv(ch, ch, y_out, y_out, 3, 3).with_pad(1),
            );
            let main = b.last_id().expect("conv2 added");
            block_deps = if block == 0 && (stride != 1 || in_ch != ch) {
                b = b.layer_with_deps(
                    format!("{prefix}_proj"),
                    LayerOp::PointwiseConv,
                    LayerDims::conv(ch, in_ch, y, y, 1, 1).with_stride(stride),
                    &block_deps,
                );
                vec![main, b.last_id().expect("proj added")]
            } else {
                vec![main]
            };
            in_ch = ch;
            y = y_out;
        }
    }
    (b, block_deps, in_ch, y)
}

/// Standalone ResNet-34 backbone model (useful for tests and custom
/// workloads; the paper itself uses it only inside SSD).
pub fn resnet34_backbone() -> DnnModel {
    let (b, _, _, _) = resnet34_stem(224);
    let model = b.build().expect("resnet34 definition is valid");
    rename(model, "Resnet34")
}

fn rename(model: DnnModel, name: &str) -> DnnModel {
    // DnnModel is immutable by design; rebuild with the new name.
    let mut b = ModelBuilder::new(name);
    for (id, layer) in model.iter() {
        b = b.layer_with_deps(
            layer.name(),
            layer.op(),
            *layer.dims(),
            model.predecessors(id),
        );
    }
    b.build().expect("renamed model preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStats;

    #[test]
    fn resnet50_layer_count() {
        // 1 conv1 + 16 blocks x 3 + 4 projections + 1 FC = 54.
        assert_eq!(resnet50().num_layers(), 54);
    }

    #[test]
    fn resnet50_mac_count_in_expected_range() {
        // ResNet-50 is ~4.1 GMACs at 224x224.
        let macs = resnet50().total_macs() as f64;
        assert!((3.5e9..4.5e9).contains(&macs), "got {macs}");
    }

    #[test]
    fn resnet50_table1_min_ratio() {
        let s = ModelStats::for_model(&resnet50());
        // Table I: min 0.013 (= 3 / 224 at conv1).
        assert!((s.min_channel_activation_ratio - 0.0134).abs() < 1e-3);
    }

    #[test]
    fn resnet50_final_spatial_is_7() {
        let m = resnet50();
        let last_conv = m.layer(m.layer_id("res5c_pw2").unwrap());
        assert_eq!(last_conv.out_y(), 7);
        assert_eq!(last_conv.dims().k, 2048);
    }

    #[test]
    fn resnet50_stage_strides() {
        let m = resnet50();
        let s3 = m.layer(m.layer_id("res3a_conv").unwrap());
        assert_eq!(s3.dims().stride, 2);
        assert_eq!(s3.out_y(), 28);
    }

    #[test]
    fn resnet50_projection_feeds_next_block() {
        let m = resnet50();
        // res3a has a projection; res3b_pw1 must depend on both res3a_pw2
        // and res3a_proj.
        let pw1 = m.layer_id("res3b_pw1").unwrap();
        let deps = m.predecessors(pw1);
        assert_eq!(deps.len(), 2);
        assert!(deps.contains(&m.layer_id("res3a_pw2").unwrap()));
        assert!(deps.contains(&m.layer_id("res3a_proj").unwrap()));
    }

    #[test]
    fn resnet34_backbone_builds() {
        let m = resnet34_backbone();
        // 1 + (3+4+6) x 2 + 2 projections = 29.
        assert_eq!(m.num_layers(), 29);
    }

    #[test]
    fn resnet34_projection_consumes_block_input() {
        let m = resnet34_backbone();
        let proj = m.layer_id("s2b0_proj").unwrap();
        // Projection reads the stage-1 output, i.e. depends on s1b2_conv2.
        let deps = m.predecessors(proj);
        assert_eq!(deps, &[m.layer_id("s1b2_conv2").unwrap()]);
    }
}
