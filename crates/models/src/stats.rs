//! Per-model heterogeneity statistics (reproduces the paper's Table I).

use crate::{DnnModel, LayerOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Shape/operator heterogeneity statistics for one model, mirroring the
/// columns of the paper's Table I.
///
/// The channel-activation size ratio of a layer is its input channel count
/// divided by its input activation rows (`C / Y`) — the paper's one-number
/// abstraction of layer shape. Classification networks span tiny (first
/// layer) to huge (late FC) ratios; segmentation networks stay flat.
///
/// # Example
///
/// ```
/// use herald_models::{zoo, ModelStats};
///
/// let stats = ModelStats::for_model(&zoo::unet());
/// // Table I reports UNet min 0.002 and max ~34.1.
/// assert!(stats.min_channel_activation_ratio < 0.01);
/// assert!(stats.max_channel_activation_ratio > 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Number of MAC layers.
    pub num_layers: usize,
    /// Total MAC operations over all layers.
    pub total_macs: u64,
    /// Total filter weight elements over all layers.
    pub total_weights: u64,
    /// Minimum `C / Y` over layers.
    pub min_channel_activation_ratio: f64,
    /// Median `C / Y` over layers.
    pub median_channel_activation_ratio: f64,
    /// Maximum `C / Y` over layers.
    pub max_channel_activation_ratio: f64,
    /// The set of operators the model uses.
    pub ops: BTreeSet<LayerOp>,
}

impl ModelStats {
    /// Computes statistics for a model.
    pub fn for_model(model: &DnnModel) -> Self {
        let mut ratios: Vec<f64> = model
            .layers()
            .iter()
            .map(|l| l.channel_activation_ratio())
            .collect();
        ratios.sort_by(f64::total_cmp);
        let median = if ratios.is_empty() {
            0.0
        } else if ratios.len() % 2 == 1 {
            ratios[ratios.len() / 2]
        } else {
            (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
        };
        Self {
            model: model.name().to_string(),
            num_layers: model.num_layers(),
            total_macs: model.total_macs(),
            total_weights: model.total_weight_elems(),
            min_channel_activation_ratio: ratios.first().copied().unwrap_or(0.0),
            median_channel_activation_ratio: median,
            max_channel_activation_ratio: ratios.last().copied().unwrap_or(0.0),
            ops: model.layers().iter().map(|l| l.op()).collect(),
        }
    }

    /// Ratio between the largest and smallest channel-activation ratio —
    /// the paper quotes up to `315076x` across AR/VR models.
    pub fn ratio_spread(&self) -> f64 {
        if self.min_channel_activation_ratio == 0.0 {
            f64::INFINITY
        } else {
            self.max_channel_activation_ratio / self.min_channel_activation_ratio
        }
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops: Vec<&str> = self.ops.iter().map(|o| o.mnemonic()).collect();
        write!(
            f,
            "{}: {} layers, ratio min {:.3} / median {:.3} / max {:.3}, ops {{{}}}",
            self.model,
            self.num_layers,
            self.min_channel_activation_ratio,
            self.median_channel_activation_ratio,
            self.max_channel_activation_ratio,
            ops.join(", ")
        )
    }
}

// `BTreeSet<LayerOp>` needs `Ord` on `LayerOp`; derive an order that simply
// follows declaration order (it has no semantic meaning).
impl Ord for LayerOp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(op: &LayerOp) -> u8 {
            match op {
                LayerOp::Conv2d => 0,
                LayerOp::PointwiseConv => 1,
                LayerOp::DepthwiseConv => 2,
                LayerOp::Fc => 3,
                LayerOp::TransposedConv => 4,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

impl PartialOrd for LayerOp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerDims, ModelBuilder};

    fn tiny_model() -> DnnModel {
        ModelBuilder::new("tiny")
            .chain(
                "a",
                LayerOp::Conv2d,
                LayerDims::conv(8, 2, 16, 16, 3, 3).with_pad(1),
            )
            .chain(
                "b",
                LayerOp::Conv2d,
                LayerDims::conv(16, 8, 16, 16, 3, 3).with_pad(1),
            )
            .chain("fc", LayerOp::Fc, LayerDims::fc(10, 16))
            .build()
            .unwrap()
    }

    #[test]
    fn min_median_max_ordering() {
        let s = ModelStats::for_model(&tiny_model());
        assert!(s.min_channel_activation_ratio <= s.median_channel_activation_ratio);
        assert!(s.median_channel_activation_ratio <= s.max_channel_activation_ratio);
        // FC layer: ratio 16/1 = 16.
        assert_eq!(s.max_channel_activation_ratio, 16.0);
        // First conv: 2/16 = 0.125.
        assert_eq!(s.min_channel_activation_ratio, 0.125);
    }

    #[test]
    fn op_set_collected() {
        let s = ModelStats::for_model(&tiny_model());
        assert!(s.ops.contains(&LayerOp::Conv2d));
        assert!(s.ops.contains(&LayerOp::Fc));
        assert!(!s.ops.contains(&LayerOp::DepthwiseConv));
    }

    #[test]
    fn spread_is_max_over_min() {
        let s = ModelStats::for_model(&tiny_model());
        assert!((s.ratio_spread() - 16.0 / 0.125).abs() < 1e-9);
    }

    #[test]
    fn odd_and_even_median() {
        let s = ModelStats::for_model(&tiny_model());
        // 3 layers -> middle element (8/16 = 0.5).
        assert_eq!(s.median_channel_activation_ratio, 0.5);
    }

    #[test]
    fn display_mentions_ops() {
        let s = ModelStats::for_model(&tiny_model());
        let text = s.to_string();
        assert!(text.contains("CONV2D"));
        assert!(text.contains("FC"));
    }
}
