//! Layer operators and the [`Layer`] compute node.

use crate::{LayerDims, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The MAC-layer operator taxonomy of the paper's Table I.
///
/// Skip connections and concatenations are *graph* features (extra
/// dependence edges / channel-merging inputs) rather than MAC operators, so
/// they are represented on [`crate::DnnModel`] edges, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// Standard 2-D convolution (`CONV2D`): accumulates across input
    /// channels and the `R x S` filter window.
    Conv2d,
    /// Point-wise (1x1) convolution (`PWCONV`).
    PointwiseConv,
    /// Depth-wise convolution (`DWCONV`): each input channel convolved with
    /// its own filter; **no accumulation across input channels**. This is
    /// the operator that starves channel-parallel dataflows such as NVDLA's.
    DepthwiseConv,
    /// Fully-connected / GEMM layer (`FC`). Spatial extents may be larger
    /// than 1 to fold RNN timesteps or flattened batches into the GEMM.
    Fc,
    /// Transposed / up-scale convolution (`UPCONV`), used by segmentation
    /// decoders (UNet) and depth-estimation decoders.
    TransposedConv,
}

impl LayerOp {
    /// Whether the operator accumulates partial sums across input channels.
    ///
    /// Depth-wise convolution does not; this constrains the legal mappings a
    /// channel-parallel dataflow can construct (paper Sec. II-B).
    pub fn accumulates_across_channels(&self) -> bool {
        !matches!(self, LayerOp::DepthwiseConv)
    }

    /// Short uppercase mnemonic as used in the paper's tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerOp::Conv2d => "CONV2D",
            LayerOp::PointwiseConv => "PWCONV",
            LayerOp::DepthwiseConv => "DWCONV",
            LayerOp::Fc => "FC",
            LayerOp::TransposedConv => "UPCONV",
        }
    }
}

impl fmt::Display for LayerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single MAC layer of a DNN: an operator plus its loop dimensions.
///
/// # Example
///
/// ```
/// use herald_models::{Layer, LayerDims, LayerOp};
///
/// let l = Layer::new("conv1", LayerOp::Conv2d,
///                    LayerDims::conv(64, 3, 224, 224, 7, 7).with_stride(2).with_pad(3));
/// assert_eq!(l.macs(), 64 * 3 * 112 * 112 * 7 * 7);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    op: LayerOp,
    dims: LayerDims,
    /// Fraction of non-zero filter weights in `(0, 1]`; 1.0 means dense.
    #[serde(default = "default_density")]
    density: f64,
    /// Position of this layer's frame in an autoregressive sequence
    /// (0 outside decode streams). Cost-neutral, but part of the layer's
    /// identity so per-token schedule variants never alias.
    #[serde(default)]
    seq_position: u32,
}

fn default_density() -> f64 {
    1.0
}

// Manual equality/hash: `density` is an `f64` knob compared bit-exactly
// (it is always written from finite literals, never computed), which
// keeps `Layer: Eq + Hash` for the cost-model and schedule memo keys.
impl PartialEq for Layer {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.op == other.op
            && self.dims == other.dims
            && self.density.to_bits() == other.density.to_bits()
            && self.seq_position == other.seq_position
    }
}

impl Eq for Layer {}

impl std::hash::Hash for Layer {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.op.hash(state);
        self.dims.hash(state);
        self.density.to_bits().hash(state);
        self.seq_position.hash(state);
    }
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics if `op` is [`LayerOp::DepthwiseConv`] and `k != c` (depth-wise
    /// convolution with channel multiplier 1 must preserve the channel
    /// count), or if `op` is [`LayerOp::Fc`] with a non-unit filter.
    pub fn new(name: impl Into<String>, op: LayerOp, dims: LayerDims) -> Self {
        if op == LayerOp::DepthwiseConv {
            assert_eq!(
                dims.k, dims.c,
                "depth-wise convolution must have k == c (got k={} c={})",
                dims.k, dims.c
            );
        }
        if op == LayerOp::Fc {
            assert_eq!((dims.r, dims.s), (1, 1), "FC layers must have a 1x1 filter");
        }
        if op == LayerOp::PointwiseConv {
            assert_eq!(
                (dims.r, dims.s),
                (1, 1),
                "point-wise convolution must have a 1x1 filter"
            );
        }
        Self {
            name: name.into(),
            op,
            dims,
            density: 1.0,
            seq_position: 0,
        }
    }

    /// Sets the fraction of non-zero filter weights (builder style).
    ///
    /// Density is a *weight* sparsity knob: 1.0 (the default) is the
    /// dense layer every pre-existing model uses, smaller values mark
    /// pruned layers whose zero work sparsity-gated hardware can skip.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density <= 1` and finite.
    #[must_use]
    pub fn with_density(mut self, density: f64) -> Self {
        assert!(
            density.is_finite() && density > 0.0 && density <= 1.0,
            "density must be in (0, 1], got {density}"
        );
        self.density = density;
        self
    }

    /// Sets the autoregressive sequence position (builder style).
    #[must_use]
    pub fn with_seq_position(mut self, seq_position: u32) -> Self {
        self.seq_position = seq_position;
        self
    }

    /// Fraction of non-zero filter weights in `(0, 1]`; 1.0 = dense.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Position in an autoregressive sequence (0 outside decode streams).
    pub fn seq_position(&self) -> u32 {
        self.seq_position
    }

    /// The layer's name (unique within its model by construction via
    /// [`crate::ModelBuilder`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer operator.
    pub fn op(&self) -> LayerOp {
        self.op
    }

    /// The layer's loop dimensions.
    pub fn dims(&self) -> &LayerDims {
        &self.dims
    }

    /// Output activation rows, respecting the operator's scaling direction.
    pub fn out_y(&self) -> u32 {
        match self.op {
            LayerOp::TransposedConv => self.dims.up_out_y(),
            _ => self.dims.out_y(),
        }
    }

    /// Output activation columns, respecting the operator's scaling
    /// direction.
    pub fn out_x(&self) -> u32 {
        match self.op {
            LayerOp::TransposedConv => self.dims.up_out_x(),
            _ => self.dims.out_x(),
        }
    }

    /// Total multiply-accumulate operations performed by this layer.
    ///
    /// * Depth-wise convolution performs `C * Y' * X' * R * S` MACs (no
    ///   cross-channel reduction).
    /// * Transposed convolution is counted input-centrically: each input
    ///   pixel scatters into an `R x S` output window, giving
    ///   `K * C * Y * X * R * S` MACs.
    /// * All other operators perform `K * C * Y' * X' * R * S` MACs.
    pub fn macs(&self) -> u64 {
        let d = &self.dims;
        let rs = u64::from(d.r) * u64::from(d.s);
        match self.op {
            LayerOp::DepthwiseConv => {
                u64::from(d.c) * u64::from(self.out_y()) * u64::from(self.out_x()) * rs
            }
            LayerOp::TransposedConv => {
                u64::from(d.k) * u64::from(d.c) * u64::from(d.y) * u64::from(d.x) * rs
            }
            _ => {
                u64::from(d.k)
                    * u64::from(d.c)
                    * u64::from(self.out_y())
                    * u64::from(self.out_x())
                    * rs
            }
        }
    }

    /// Shape of the input activation tensor (batch 1).
    pub fn input_shape(&self) -> TensorShape {
        TensorShape::new(1, self.dims.c, self.dims.y, self.dims.x)
    }

    /// Shape of the output activation tensor (batch 1).
    pub fn output_shape(&self) -> TensorShape {
        TensorShape::new(1, self.dims.k, self.out_y(), self.out_x())
    }

    /// Channel-activation size ratio of this layer (paper Table I): input
    /// channels divided by the *larger* of the input and output spatial
    /// rows. For ordinary convolutions this is `C / Y`; for up-scaling
    /// convolutions the output side is larger and is used instead, matching
    /// how the paper computes the statistic for segmentation decoders.
    pub fn channel_activation_ratio(&self) -> f64 {
        f64::from(self.dims.c) / f64::from(self.dims.y.max(self.out_y()))
    }

    /// Number of filter weight elements.
    ///
    /// Depth-wise convolution stores one `R x S` filter per channel; all
    /// other operators store `K * C` filters.
    pub fn weight_elems(&self) -> u64 {
        let d = &self.dims;
        let rs = u64::from(d.r) * u64::from(d.s);
        match self.op {
            LayerOp::DepthwiseConv => u64::from(d.c) * rs,
            _ => u64::from(d.k) * u64::from(d.c) * rs,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.name, self.op, self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(k: u32, c: u32, y: u32, r: u32) -> LayerDims {
        LayerDims::conv(k, c, y, y, r, r).with_pad(r / 2)
    }

    #[test]
    fn conv2d_mac_count() {
        let l = Layer::new("c", LayerOp::Conv2d, conv(16, 8, 10, 3));
        // Same-padded: out 10x10.
        assert_eq!(l.macs(), 16 * 8 * 10 * 10 * 9);
    }

    #[test]
    fn depthwise_macs_skip_channel_reduction() {
        let l = Layer::new("dw", LayerOp::DepthwiseConv, conv(8, 8, 10, 3));
        assert_eq!(l.macs(), 8 * 10 * 10 * 9);
    }

    #[test]
    fn fc_macs_are_weight_count() {
        let l = Layer::new("fc", LayerOp::Fc, LayerDims::fc(1000, 2048));
        assert_eq!(l.macs(), 1000 * 2048);
        assert_eq!(l.weight_elems(), 1000 * 2048);
    }

    #[test]
    fn upconv_counts_input_centric_macs() {
        let d = LayerDims::conv(512, 1024, 28, 28, 2, 2).with_stride(2);
        let l = Layer::new("up", LayerOp::TransposedConv, d);
        assert_eq!(l.macs(), 512 * 1024 * 28 * 28 * 4);
        assert_eq!(l.output_shape().h, 56);
    }

    #[test]
    fn depthwise_weight_count_is_per_channel() {
        let l = Layer::new("dw", LayerOp::DepthwiseConv, conv(32, 32, 10, 3));
        assert_eq!(l.weight_elems(), 32 * 9);
    }

    #[test]
    fn gemm_fc_reuses_weights_across_rows() {
        let l = Layer::new("lstm", LayerOp::Fc, LayerDims::gemm(4096, 1024, 25));
        assert_eq!(l.macs(), 4096 * 1024 * 25);
        assert_eq!(l.weight_elems(), 4096 * 1024);
    }

    #[test]
    #[should_panic(expected = "k == c")]
    fn depthwise_channel_mismatch_rejected() {
        let _ = Layer::new("dw", LayerOp::DepthwiseConv, conv(16, 8, 10, 3));
    }

    #[test]
    #[should_panic(expected = "1x1 filter")]
    fn fc_with_filter_rejected() {
        let _ = Layer::new("fc", LayerOp::Fc, LayerDims::conv(8, 8, 4, 4, 3, 3));
    }

    #[test]
    fn accumulation_flag() {
        assert!(LayerOp::Conv2d.accumulates_across_channels());
        assert!(!LayerOp::DepthwiseConv.accumulates_across_channels());
    }

    #[test]
    fn density_defaults_dense_and_distinguishes_variants() {
        let dense = Layer::new("c", LayerOp::Conv2d, conv(16, 8, 10, 3));
        assert_eq!(dense.density(), 1.0);
        assert_eq!(dense.seq_position(), 0);
        // An explicit 1.0 is the same layer: the knob's identity value.
        assert_eq!(dense, dense.clone().with_density(1.0));
        // Sparse and positioned variants are distinct layers.
        let sparse = dense.clone().with_density(0.25);
        assert_eq!(sparse.density(), 0.25);
        assert_ne!(dense, sparse);
        let tok7 = dense.clone().with_seq_position(7);
        assert_eq!(tok7.seq_position(), 7);
        assert_ne!(dense, tok7);
        // MACs and shapes are density-independent (density scales *cost*,
        // not the nominal loop nest).
        assert_eq!(dense.macs(), sparse.macs());
        assert_eq!(dense.weight_elems(), sparse.weight_elems());
    }

    #[test]
    fn density_round_trips_through_hash_identity() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |l: &Layer| {
            let mut s = DefaultHasher::new();
            l.hash(&mut s);
            s.finish()
        };
        let dense = Layer::new("c", LayerOp::Conv2d, conv(16, 8, 10, 3));
        assert_eq!(h(&dense), h(&dense.clone().with_density(1.0)));
        assert_ne!(h(&dense), h(&dense.clone().with_density(0.5)));
        assert_ne!(h(&dense), h(&dense.clone().with_seq_position(3)));
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn zero_density_rejected() {
        let _ = Layer::new("c", LayerOp::Conv2d, conv(16, 8, 10, 3)).with_density(0.0);
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn overdense_rejected() {
        let _ = Layer::new("c", LayerOp::Conv2d, conv(16, 8, 10, 3)).with_density(1.5);
    }
}
