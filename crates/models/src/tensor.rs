//! Tensor shape description for activations and filter weights.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a (dense) 4-D tensor in `N x C x H x W` layout.
///
/// `N` is the batch dimension; Herald workloads replicate models per batch at
/// the workload level, so `n` is almost always `1` inside a model, but the
/// type supports arbitrary batches for single-DNN batch studies (paper
/// Fig. 12 / Table VI).
///
/// # Example
///
/// ```
/// use herald_models::TensorShape;
///
/// let act = TensorShape::new(1, 64, 56, 56);
/// assert_eq!(act.elems(), 64 * 56 * 56);
/// assert_eq!(act.to_string(), "1x64x56x56");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Batch size.
    pub n: u32,
    /// Channel count.
    pub c: u32,
    /// Height (rows).
    pub h: u32,
    /// Width (columns).
    pub w: u32,
}

impl TensorShape {
    /// Creates a new tensor shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never
    /// meaningful in this IR.
    pub fn new(n: u32, c: u32, h: u32, w: u32) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "tensor dimensions must be positive, got {n}x{c}x{h}x{w}"
        );
        Self { n, c, h, w }
    }

    /// Total number of elements in the tensor.
    pub fn elems(&self) -> u64 {
        u64::from(self.n) * u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Size in bytes assuming `bytes_per_elem`-wide elements (e.g. 2 for
    /// fp16/int16 as commonly assumed by MAESTRO-style models).
    pub fn bytes(&self, bytes_per_elem: u64) -> u64 {
        self.elems() * bytes_per_elem
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_multiplies_all_dims() {
        let t = TensorShape::new(2, 3, 4, 5);
        assert_eq!(t.elems(), 120);
    }

    #[test]
    fn bytes_scales_by_width() {
        let t = TensorShape::new(1, 16, 8, 8);
        assert_eq!(t.bytes(2), 16 * 8 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = TensorShape::new(1, 0, 8, 8);
    }

    #[test]
    fn display_is_compact() {
        let t = TensorShape::new(1, 1280, 7, 7);
        assert_eq!(t.to_string(), "1x1280x7x7");
    }

    #[test]
    fn large_tensor_does_not_overflow() {
        // GNMT-scale projection tensors must not overflow u64 element math.
        let t = TensorShape::new(8, 32_000, 1024, 1);
        assert_eq!(t.elems(), 8 * 32_000 * 1024);
    }
}
