//! End-to-end reproduction of the paper's headline flow on one scenario:
//! co-optimize a Maelstrom HDA for the AR/VR-B workload on a mobile-class
//! budget, then compare against the best FDA and the MAERI-style RDA —
//! all through the [`Experiment`] facade.
//!
//! ```sh
//! cargo run --release --example arvr_maelstrom
//! ```

use herald::prelude::*;

fn main() -> Result<(), HeraldError> {
    let workload = herald::workloads::arvr_b();
    let class = AcceleratorClass::Mobile;
    let resources = class.resources();
    println!("workload: {workload}");
    println!(
        "budget: {} PEs, {} GB/s, {} MiB global buffer ({class})",
        resources.pes,
        resources.bandwidth_gbps,
        resources.global_buffer_bytes >> 20
    );

    // Hardware/schedule co-optimization (Sec. IV): sweep NVDLA/Shi-diannao
    // partitions, schedule each candidate, keep the EDP-best design.
    let maelstrom = Experiment::new(workload.clone())
        .on(class)
        .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .run()?;
    println!(
        "\nMaelstrom (co-optimized): partition {} -> {}",
        maelstrom.best().partition,
        maelstrom.report()
    );

    // Baselines, each a fixed-target experiment.
    let mut best_fda: Option<(String, f64, f64)> = None;
    for style in DataflowStyle::ALL {
        let cfg = AcceleratorConfig::fda(style, resources);
        let name = cfg.name().to_string();
        let r = Experiment::new(workload.clone())
            .on_accelerator(cfg)
            .run()?;
        println!("{:<18} {}", name, r.report());
        if best_fda.as_ref().is_none_or(|(_, _, edp)| r.edp() < *edp) {
            best_fda = Some((name, r.latency_s(), r.edp()));
        }
    }
    let rda = Experiment::new(workload)
        .on_accelerator(AcceleratorConfig::rda(resources))
        .run()?;
    println!("{:<18} {}", "RDA-MAERI", rda.report());

    let Some((fda_name, fda_lat, fda_edp)) = best_fda else {
        unreachable!("DataflowStyle::ALL is non-empty");
    };
    println!(
        "\nMaelstrom vs best FDA ({fda_name}): latency {:+.1}%, EDP {:+.1}%",
        (1.0 - maelstrom.latency_s() / fda_lat) * 100.0,
        (1.0 - maelstrom.edp() / fda_edp) * 100.0,
    );
    println!(
        "Maelstrom vs RDA: latency {:+.1}%, energy {:+.1}% \
         (paper: RDA wins latency, HDA wins energy)",
        (1.0 - maelstrom.latency_s() / rda.latency_s()) * 100.0,
        (1.0 - maelstrom.energy_j() / rda.energy_j()) * 100.0,
    );

    // The Pareto frontier of the explored partitions.
    println!("\nPareto-optimal Maelstrom partitions:");
    for p in maelstrom.pareto() {
        println!(
            "  {}  lat {:.5}s  energy {:.5}J",
            p.partition,
            p.latency_s(),
            p.energy_j()
        );
    }
    Ok(())
}
