//! End-to-end reproduction of the paper's headline flow on one scenario:
//! co-optimize a Maelstrom HDA for the AR/VR-B workload on a mobile-class
//! budget, then compare against the best FDA and the MAERI-style RDA.
//!
//! ```sh
//! cargo run --release --example arvr_maelstrom
//! ```

use herald::prelude::*;
use herald_arch::AcceleratorConfig;

fn main() {
    let workload = herald::workloads::arvr_b();
    let class = AcceleratorClass::Mobile;
    let resources = class.resources();
    println!("workload: {workload}");
    println!(
        "budget: {} PEs, {} GB/s, {} MiB global buffer ({class})",
        resources.pes,
        resources.bandwidth_gbps,
        resources.global_buffer_bytes >> 20
    );

    // Hardware/schedule co-optimization (Sec. IV): sweep NVDLA/Shi-diannao
    // partitions, schedule each candidate, keep the EDP-best design.
    let dse = DseEngine::new(DseConfig::default());
    let outcome = dse.co_optimize(
        &workload,
        resources,
        &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
    );
    let best = outcome.best().expect("non-empty design space");
    println!(
        "\nMaelstrom (co-optimized): partition {} -> {}",
        best.partition, best.report
    );

    // Baselines.
    let mut best_fda: Option<(String, f64, f64)> = None;
    for style in DataflowStyle::ALL {
        let cfg = AcceleratorConfig::fda(style, resources);
        let r = dse.evaluate_config(&workload, &cfg);
        println!("{:<18} {r}", cfg.name());
        if best_fda
            .as_ref()
            .is_none_or(|(_, _, edp)| r.edp() < *edp)
        {
            best_fda = Some((cfg.name().to_string(), r.total_latency_s(), r.edp()));
        }
    }
    let rda = dse.evaluate_config(&workload, &AcceleratorConfig::rda(resources));
    println!("{:<18} {rda}", "RDA-MAERI");

    let (fda_name, fda_lat, fda_edp) = best_fda.expect("three FDAs");
    println!(
        "\nMaelstrom vs best FDA ({fda_name}): latency {:+.1}%, EDP {:+.1}%",
        (1.0 - best.latency_s() / fda_lat) * 100.0,
        (1.0 - best.edp() / fda_edp) * 100.0,
    );
    println!(
        "Maelstrom vs RDA: latency {:+.1}%, energy {:+.1}% \
         (paper: RDA wins latency, HDA wins energy)",
        (1.0 - best.latency_s() / rda.total_latency_s()) * 100.0,
        (1.0 - best.energy_j() / rda.total_energy_j()) * 100.0,
    );

    // The Pareto frontier of the explored partitions.
    println!("\nPareto-optimal Maelstrom partitions:");
    for p in outcome.pareto() {
        println!(
            "  {}  lat {:.5}s  energy {:.5}J",
            p.partition,
            p.latency_s(),
            p.energy_j()
        );
    }
}
