//! Streaming scenarios on the event-driven simulation core.
//!
//! Builds a small two-tenant scenario — a periodic camera pipeline and a
//! bursty Poisson stream — co-optimizes an HDA partition for it, streams
//! it with a mid-run workload swap, and prints the streaming metrics the
//! one-shot `Experiment::run` flow cannot see: throughput, tail latency,
//! deadline-miss rate and utilization over time.
//!
//! Run with `cargo run --release --example streaming_scenario`.

use herald::prelude::*;

fn main() -> Result<(), HeraldError> {
    // Two tenants: a 40 fps MobileNetV1 camera stream with a one-period
    // deadline that swaps to MobileNetV2 halfway, and a bursty GNMT
    // translation stream.
    let scenario = Scenario::new("edge-multi-tenant", 0.5)
        .stream(
            StreamSpec::periodic(
                "camera",
                herald::workloads::single_model(herald::models::zoo::mobilenet_v1(), 1),
                40.0,
            )
            .with_deadline(1.0 / 40.0)
            .swap_at(
                0.25,
                herald::workloads::single_model(herald::models::zoo::mobilenet_v2(), 1),
            ),
        )
        .stream(StreamSpec::poisson(
            "translate",
            herald::workloads::single_model(herald::models::zoo::gnmt(), 1),
            10.0,
            7,
        ));

    // Same builder as one-shot runs: search an HDA partition for the
    // scenario's aggregate workload, then stream on the winner with the
    // scheduler re-invoked online at every arrival and at the swap.
    let outcome = Experiment::new(scenario.design_workload())
        .on(AcceleratorClass::Edge)
        .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .fast()
        .scenario(&scenario)?;

    let report = outcome.report();
    println!("{report}");
    println!(
        "accelerator: {} ({} schedule compiles, {} cache hits — {:.0}% of \
         online decisions served incrementally, {} placement evals)",
        outcome.accelerator,
        report.scheduler_invocations(),
        report.schedule_cache_hits(),
        report.schedule_cache_hit_rate() * 100.0,
        report.placement_evaluations(),
    );

    println!("\nper-stream statistics:");
    for s in report.stream_stats() {
        println!(
            "  {:<10} {:>3} frames, p50 {:.4} s, p95 {:.4} s, p99 {:.4} s, miss {:.1}%",
            s.name,
            s.frames,
            s.p50_latency_s,
            s.p95_latency_s,
            s.p99_latency_s,
            s.deadline_miss_rate * 100.0
        );
    }

    for swap in report.swaps() {
        println!(
            "\nswap at {:.3} s: {} -> {} (miss rate {:.1}% before, {:.1}% after)",
            swap.at_s,
            swap.from,
            swap.to,
            report.miss_rate_between(0.0, swap.at_s) * 100.0,
            report.miss_rate_between(swap.at_s, report.makespan_s()) * 100.0
        );
    }

    println!("\nutilization over time (100 ms windows):");
    for sample in report.utilization_timeline(0.1) {
        let cells: Vec<String> = sample
            .per_acc
            .iter()
            .map(|u| format!("{:>4.0}%", u * 100.0))
            .collect();
        println!("  t = {:.1} s: {}", sample.t_s, cells.join("  "));
    }
    Ok(())
}
