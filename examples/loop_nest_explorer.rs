//! Inspect how each dataflow style maps a layer: Fig. 4-style loop nests,
//! mapping utilization, and the resulting cost breakdown.
//!
//! ```sh
//! cargo run --release --example loop_nest_explorer
//! ```

use herald::prelude::*;
use herald_models::LayerDims;

fn main() {
    let layers = [
        Layer::new(
            "early_conv",
            LayerOp::Conv2d,
            LayerDims::conv(64, 3, 112, 112, 3, 3).with_pad(1),
        ),
        Layer::new(
            "late_conv",
            LayerOp::Conv2d,
            LayerDims::conv(512, 512, 7, 7, 3, 3).with_pad(1),
        ),
        Layer::new(
            "depthwise",
            LayerOp::DepthwiseConv,
            LayerDims::conv(96, 96, 56, 56, 3, 3).with_pad(1),
        ),
    ];

    let cost = CostModel::default();
    const PES: u32 = 1024;
    const BW: f64 = 16.0;

    for layer in &layers {
        println!("==============================================");
        println!("{layer}");
        for style in DataflowStyle::ALL {
            let mapping = MappingBuilder::new(style, PES).best(layer);
            let c = cost.evaluate(layer, style, PES, BW);
            println!(
                "\n--- {style} ({} active / {} PEs = {:.1}% utilization) ---",
                mapping.active_pes(),
                PES,
                mapping.utilization() * 100.0
            );
            print!("{}", mapping.loop_nest(layer));
            println!(
                "latency {:.3e} s (compute {} / traffic {} cycles), energy: {}",
                c.latency_s, c.compute_cycles, c.traffic_cycles, c.energy
            );
        }
        let (best, _) = cost.best_style(layer, PES, BW, Metric::Edp);
        println!("\n=> EDP-preferred dataflow: {best}\n");
    }
}
