//! Bring your own network: define a custom DNN with [`ModelBuilder`],
//! combine it with zoo models into a workload, and explore three-way HDA
//! designs with random-search DSE through the [`Experiment`] facade.
//!
//! ```sh
//! cargo run --release --example custom_hda_dse
//! ```

use herald::prelude::*;
use herald_models::{zoo, LayerDims};
use herald_workloads::MultiDnnWorkload;

/// A toy super-resolution network: shallow-channel, huge-activation layers
/// ending in a transposed-conv upscaler — segmentation-like shape that
/// favours output-stationary dataflows.
fn upscaler() -> DnnModel {
    ModelBuilder::new("ToyUpscaler")
        .chain(
            "conv1",
            LayerOp::Conv2d,
            LayerDims::conv(32, 3, 256, 256, 3, 3).with_pad(1),
        )
        .chain(
            "conv2",
            LayerOp::Conv2d,
            LayerDims::conv(32, 32, 256, 256, 3, 3).with_pad(1),
        )
        .chain(
            "conv3",
            LayerOp::Conv2d,
            LayerDims::conv(64, 32, 256, 256, 3, 3).with_pad(1),
        )
        .chain(
            "up1",
            LayerOp::TransposedConv,
            LayerDims::conv(32, 64, 256, 256, 2, 2).with_stride(2),
        )
        .chain(
            "head",
            LayerOp::PointwiseConv,
            LayerDims::conv(3, 32, 512, 512, 1, 1),
        )
        .build()
        .expect("valid model")
}

fn main() -> Result<(), HeraldError> {
    let custom = upscaler();
    println!(
        "custom model: {} ({} layers, {:.2} GMACs)",
        custom.name(),
        custom.num_layers(),
        custom.total_macs() as f64 / 1e9
    );

    // Mix the custom network with a classifier and a language model to
    // maximize layer heterogeneity.
    let workload = MultiDnnWorkload::new("custom-mix")
        .with_model(custom, 2)
        .with_model(zoo::resnet50(), 1)
        .with_model(zoo::gnmt(), 1);
    println!("workload: {workload}");

    // Random-search DSE over a 3-way HDA (all three dataflow styles).
    let outcome = Experiment::new(workload)
        .on(AcceleratorClass::Mobile)
        .with_styles([
            DataflowStyle::Nvdla,
            DataflowStyle::ShiDianNao,
            DataflowStyle::Eyeriss,
        ])
        .strategy(SearchStrategy::Random {
            samples: 24,
            seed: 2021,
        })
        .granularity(16, 4)
        .run()?;

    println!(
        "\nexplored {} random 3-way partitions",
        outcome.points().len()
    );
    let best = outcome.best();
    println!("best: {} -> {}", best.partition, best.report);

    println!("\ntop 5 by EDP:");
    let mut ranked: Vec<_> = outcome.points().iter().collect();
    ranked.sort_by(|a, b| a.edp().total_cmp(&b.edp()));
    for p in ranked.iter().take(5) {
        println!(
            "  {}  lat {:.5}s  energy {:.5}J  EDP {:.6}",
            p.partition,
            p.latency_s(),
            p.energy_j(),
            p.edp()
        );
    }

    // Which sub-accelerator ran how much?
    println!("\nbest design utilization:");
    for (i, acc) in best.report.per_acc().iter().enumerate() {
        println!(
            "  {}: {} layers, {:.0}% busy",
            acc.name,
            acc.layers,
            best.report.acc_utilization(i) * 100.0
        );
    }
    Ok(())
}
