//! Quickstart: evaluate a two-model workload on a Maelstrom-style HDA
//! through the [`Experiment`] facade and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use herald::prelude::*;
use herald_core::task::TaskGraph;
use herald_models::zoo;
use herald_workloads::MultiDnnWorkload;

fn main() -> Result<(), HeraldError> {
    // 1. A multi-DNN workload: one classifier, two detector replicas.
    let workload = MultiDnnWorkload::new("quickstart")
        .with_model(zoo::resnet50(), 1)
        .with_model(zoo::mobilenet_v2(), 2);
    println!("workload: {workload}");

    // 2. An edge-class Maelstrom: NVDLA-style + Shi-diannao-style
    //    sub-accelerators with the paper's Table V edge partition.
    let resources = AcceleratorClass::Edge.resources();
    let maelstrom = AcceleratorConfig::maelstrom(
        resources,
        Partition::new(vec![128, 896], vec![4.0, 12.0])
            .map_err(|reason| HeraldError::InvalidResources { reason })?,
    )?;
    println!("accelerator: {maelstrom}");

    // 3. One experiment: schedule with Herald's scheduler and replay on
    //    the execution model. The graph is only rebuilt for labelling.
    let graph = TaskGraph::new(&workload);
    let outcome = Experiment::new(workload).on_accelerator(maelstrom).run()?;
    let report = outcome.report();

    println!("\nresult: {report}");
    for (i, acc) in report.per_acc().iter().enumerate() {
        println!(
            "  {}: {} layers, busy {:.4}s ({:.0}% of makespan), {:.4} J",
            acc.name,
            acc.layers,
            acc.busy_s,
            report.acc_utilization(i) * 100.0,
            acc.energy_j
        );
    }

    // 4. Peek at the first scheduled layers.
    println!("\nfirst five timeline entries:");
    for e in report.entries().iter().take(5) {
        println!(
            "  {:>9.6}s - {:>9.6}s  acc{}  {:<28} [{}]",
            e.start_s,
            e.finish_s,
            e.acc,
            graph.label(e.task),
            e.style
        );
    }

    // 5. The whole schedule at a glance, plus per-model completion times.
    println!("\nGantt ('#' busy, '+' partial, '.' trace):");
    print!("{}", herald_core::report::gantt(report, 64));
    println!("per-model completion:");
    for (label, t) in herald_core::report::instance_completion_times(&graph, report) {
        println!("  {label:<18} {t:.5}s");
    }
    Ok(())
}
