//! Cross-crate integration tests: the paper's qualitative claims, asserted
//! end-to-end through the public API — every scenario drives the
//! [`Experiment`] facade rather than the per-stage entry points.

use herald::prelude::*;
use herald_core::task::TaskGraph;
use herald_models::zoo;
use herald_workloads::MultiDnnWorkload;

fn mixed_workload() -> MultiDnnWorkload {
    MultiDnnWorkload::new("mix")
        .with_model(zoo::resnet50(), 1)
        .with_model(zoo::mobilenet_v2(), 2)
}

const MAELSTROM_STYLES: [DataflowStyle; 2] = [DataflowStyle::Nvdla, DataflowStyle::ShiDianNao];

/// Fig. 2: the dataflow preference inverts between ResNet50 and UNet.
#[test]
fn fig2_fda_preference_inversion() {
    let cost = CostModel::default();
    let edp = |model: &DnnModel, style| {
        let (mut lat, mut energy) = (0.0f64, 0.0f64);
        for layer in model.layers() {
            let c = cost.evaluate(layer, style, 256, 32.0);
            lat += c.latency_s;
            energy += c.energy_j();
        }
        lat * energy
    };
    let resnet = zoo::resnet50();
    let unet = zoo::unet();
    assert!(edp(&resnet, DataflowStyle::Nvdla) < edp(&resnet, DataflowStyle::ShiDianNao));
    assert!(edp(&unet, DataflowStyle::ShiDianNao) < edp(&unet, DataflowStyle::Nvdla));
}

/// Sec. III-B: an HDA overlaps layers of different models; its makespan
/// beats the serial busy-time sum substantially.
#[test]
fn hda_exploits_layer_parallelism() -> Result<(), HeraldError> {
    let acc = AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )?;
    let outcome = Experiment::new(mixed_workload())
        .on_accelerator(acc)
        .run()?;
    let report = outcome.report();
    let busy: f64 = report.per_acc().iter().map(|a| a.busy_s).sum();
    assert!(report.total_latency_s() < 0.85 * busy);
    Ok(())
}

/// Sec. V-B: the best HDA improves EDP over every FDA on a heterogeneous
/// multi-DNN workload (mobile class, where parallelism has headroom).
#[test]
fn hda_beats_all_fdas_on_mobile() -> Result<(), HeraldError> {
    let res = AcceleratorClass::Mobile.resources();
    let best_hda = Experiment::new(mixed_workload())
        .on(AcceleratorClass::Mobile)
        .with_styles(MAELSTROM_STYLES)
        .fast()
        .run()?
        .edp();
    for style in DataflowStyle::ALL {
        let fda = Experiment::new(mixed_workload())
            .on_accelerator(AcceleratorConfig::fda(style, res))
            .fast()
            .run()?;
        assert!(
            best_hda < fda.edp(),
            "{style}: HDA {best_hda} vs FDA {}",
            fda.edp()
        );
    }
    Ok(())
}

/// Sec. V-B: RDA wins latency, HDA wins energy — both Pareto-optimal.
#[test]
fn rda_hda_tradeoff() -> Result<(), HeraldError> {
    let res = AcceleratorClass::Mobile.resources();
    let rda = Experiment::new(mixed_workload())
        .on_accelerator(AcceleratorConfig::rda(res))
        .fast()
        .run()?;
    let hda = Experiment::new(mixed_workload())
        .on(AcceleratorClass::Mobile)
        .with_styles(MAELSTROM_STYLES)
        .fast()
        .run()?;
    assert!(rda.latency_s() < hda.latency_s(), "RDA should win latency");
    assert!(
        hda.energy_j() < rda.energy_j(),
        "HDA should win energy: {} vs {}",
        hda.energy_j(),
        rda.energy_j()
    );
    Ok(())
}

/// Fig. 6: the even PE split is not optimal.
#[test]
fn even_partition_is_suboptimal() -> Result<(), HeraldError> {
    let res = AcceleratorClass::Edge.resources();
    let best = Experiment::new(mixed_workload())
        .on(AcceleratorClass::Edge)
        .with_styles(MAELSTROM_STYLES)
        .run()?;
    let even = Experiment::new(mixed_workload())
        .on_accelerator(AcceleratorConfig::maelstrom(
            res,
            Partition::even(2, res.pes, res.bandwidth_gbps),
        )?)
        .run()?;
    assert!(
        best.edp() < even.edp(),
        "best {} vs even {}",
        best.edp(),
        even.edp()
    );
    Ok(())
}

/// Table III: SM-FDA (same dataflow twice) never beats the best HDA —
/// heterogeneity, not just replication, is what pays.
#[test]
fn smfda_is_dominated_by_hda() -> Result<(), HeraldError> {
    let res = AcceleratorClass::Mobile.resources();
    let hda = Experiment::new(mixed_workload())
        .on(AcceleratorClass::Mobile)
        .with_styles(MAELSTROM_STYLES)
        .fast()
        .run()?
        .edp();
    for style in DataflowStyle::ALL {
        let sm = Experiment::new(mixed_workload())
            .on_accelerator(AcceleratorConfig::sm_fda(style, 2, res)?)
            .fast()
            .run()?;
        assert!(hda < sm.edp(), "{style}: HDA {hda} vs SM-FDA {}", sm.edp());
    }
    Ok(())
}

/// Sec. V-B scheduler ablation: Herald's scheduler beats the greedy
/// baseline on a heterogeneous workload. (The greedy baseline has no
/// facade presence — it exists only for this ablation — so this test
/// stays on the scheduler trait.)
#[test]
fn herald_scheduler_beats_greedy() -> Result<(), HeraldError> {
    let graph = TaskGraph::new(&mixed_workload());
    let acc = AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )?;
    let cost = CostModel::default();
    let herald = HeraldScheduler::default().schedule_and_simulate(&graph, &acc, &cost)?;
    let greedy = GreedyScheduler::default().schedule_and_simulate(&graph, &acc, &cost)?;
    assert!(herald.edp() < greedy.edp());
    Ok(())
}

/// Fig. 13: rescheduling a foreign workload on a fixed design works and
/// stays within sane bounds of the matched design.
#[test]
fn workload_change_is_graceful() -> Result<(), HeraldError> {
    let a = mixed_workload();
    let b = MultiDnnWorkload::new("other")
        .with_model(zoo::mobilenet_v1(), 2)
        .with_model(zoo::gnmt(), 1);
    let design_a = Experiment::new(a)
        .on(AcceleratorClass::Edge)
        .with_styles(MAELSTROM_STYLES)
        .fast()
        .run()?;
    let matched_b = Experiment::new(b.clone())
        .on(AcceleratorClass::Edge)
        .with_styles(MAELSTROM_STYLES)
        .fast()
        .run()?
        .edp();
    // Fix A's winning hardware, re-run only the scheduler on B.
    let mismatched_b = Experiment::new(b)
        .on_accelerator(design_a.best().config.clone())
        .fast()
        .run()?;
    // Running B on A's hardware costs something, but not an order of
    // magnitude (paper: ~4% latency, ~0.1% energy).
    assert!(mismatched_b.edp() < 3.0 * matched_b);
    Ok(())
}

/// The three search strategies all find valid designs, and exhaustive is
/// at least as good as its binary subset.
#[test]
fn search_strategies_are_consistent() -> Result<(), HeraldError> {
    let run = |strategy| -> Result<f64, HeraldError> {
        Ok(
            Experiment::new(herald_workloads::single_model(zoo::mobilenet_v2(), 2))
                .on(AcceleratorClass::Edge)
                .with_styles(MAELSTROM_STYLES)
                .strategy(strategy)
                .fast()
                .granularity(8, 2)
                .run()?
                .edp(),
        )
    };
    let exhaustive = run(SearchStrategy::Exhaustive)?;
    let binary = run(SearchStrategy::BinarySampling)?;
    let random = run(SearchStrategy::Random {
        samples: 6,
        seed: 3,
    })?;
    assert!(exhaustive <= binary + 1e-15);
    assert!(random.is_finite() && binary.is_finite());
    Ok(())
}

/// Umbrella-crate prelude round trip: everything needed for the README
/// example is exported, and the facade agrees with the raw pipeline.
#[test]
fn prelude_supports_readme_flow() -> Result<(), HeraldError> {
    let workload = herald::workloads::mlperf(1);
    let graph = TaskGraph::new(&workload);
    assert_eq!(graph.len(), workload.total_layers());
    let acc = AcceleratorConfig::fda(DataflowStyle::Eyeriss, AcceleratorClass::Edge.resources());
    let outcome = Experiment::new(workload)
        .on_accelerator(acc.clone())
        .run()?;
    assert!(outcome.latency_s() > 0.0);
    assert!(outcome.report().score(Metric::Edp) > 0.0);
    // The facade's fixed-target path is exactly the scheduler + simulator.
    let cost = CostModel::default();
    let raw = ScheduleSimulator::new(&graph, &acc, &cost).simulate(
        &HeraldScheduler::new(SchedulerConfig::default())
            .schedule(&graph, &acc, &cost)
            .unwrap(),
    )?;
    assert_eq!(raw.total_latency_s(), outcome.latency_s());
    Ok(())
}
