//! Cross-crate integration tests: the paper's qualitative claims, asserted
//! end-to-end through the public API.

use herald::prelude::*;
use herald_arch::{AcceleratorConfig, Partition};
use herald_core::dse::SearchStrategy;
use herald_core::task::TaskGraph;
use herald_models::zoo;
use herald_workloads::MultiDnnWorkload;

fn mixed_workload() -> MultiDnnWorkload {
    MultiDnnWorkload::new("mix")
        .with_model(zoo::resnet50(), 1)
        .with_model(zoo::mobilenet_v2(), 2)
}

/// Fig. 2: the dataflow preference inverts between ResNet50 and UNet.
#[test]
fn fig2_fda_preference_inversion() {
    let cost = CostModel::default();
    let edp = |model: &DnnModel, style| {
        let (mut lat, mut energy) = (0.0f64, 0.0f64);
        for layer in model.layers() {
            let c = cost.evaluate(layer, style, 256, 32.0);
            lat += c.latency_s;
            energy += c.energy_j();
        }
        lat * energy
    };
    let resnet = zoo::resnet50();
    let unet = zoo::unet();
    assert!(edp(&resnet, DataflowStyle::Nvdla) < edp(&resnet, DataflowStyle::ShiDianNao));
    assert!(edp(&unet, DataflowStyle::ShiDianNao) < edp(&unet, DataflowStyle::Nvdla));
}

/// Sec. III-B: an HDA overlaps layers of different models; its makespan
/// beats the serial busy-time sum substantially.
#[test]
fn hda_exploits_layer_parallelism() {
    let graph = TaskGraph::new(&mixed_workload());
    let acc = AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap();
    let cost = CostModel::default();
    let report = HeraldScheduler::default()
        .schedule_and_simulate(&graph, &acc, &cost)
        .unwrap();
    let busy: f64 = report.per_acc().iter().map(|a| a.busy_s).sum();
    assert!(report.total_latency_s() < 0.85 * busy);
}

/// Sec. V-B: the best HDA improves EDP over every FDA on a heterogeneous
/// multi-DNN workload (mobile class, where parallelism has headroom).
#[test]
fn hda_beats_all_fdas_on_mobile() {
    let workload = mixed_workload();
    let res = AcceleratorClass::Mobile.resources();
    let dse = DseEngine::new(DseConfig::fast());
    let best_hda = dse
        .co_optimize(
            &workload,
            res,
            &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
        )
        .best()
        .expect("non-empty design space")
        .edp();
    for style in DataflowStyle::ALL {
        let fda = dse.evaluate_config(&workload, &AcceleratorConfig::fda(style, res));
        assert!(
            best_hda < fda.edp(),
            "{style}: HDA {best_hda} vs FDA {}",
            fda.edp()
        );
    }
}

/// Sec. V-B: RDA wins latency, HDA wins energy — both Pareto-optimal.
#[test]
fn rda_hda_tradeoff() {
    let workload = mixed_workload();
    let res = AcceleratorClass::Mobile.resources();
    let dse = DseEngine::new(DseConfig::fast());
    let rda = dse.evaluate_config(&workload, &AcceleratorConfig::rda(res));
    let outcome = dse.co_optimize(
        &workload,
        res,
        &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
    );
    let hda = outcome.best().expect("non-empty design space");
    assert!(rda.total_latency_s() < hda.latency_s(), "RDA should win latency");
    assert!(
        hda.energy_j() < rda.total_energy_j(),
        "HDA should win energy: {} vs {}",
        hda.energy_j(),
        rda.total_energy_j()
    );
}

/// Fig. 6: the even PE split is not optimal.
#[test]
fn even_partition_is_suboptimal() {
    let workload = mixed_workload();
    let res = AcceleratorClass::Edge.resources();
    let dse = DseEngine::new(DseConfig::default());
    let outcome = dse.co_optimize(
        &workload,
        res,
        &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
    );
    let best = outcome.best().expect("non-empty design space");
    let even = dse.evaluate_config(
        &workload,
        &AcceleratorConfig::maelstrom(res, Partition::even(2, res.pes, res.bandwidth_gbps))
            .unwrap(),
    );
    assert!(
        best.edp() < even.edp(),
        "best {} vs even {}",
        best.edp(),
        even.edp()
    );
}

/// Table III: SM-FDA (same dataflow twice) never beats the best HDA —
/// heterogeneity, not just replication, is what pays.
#[test]
fn smfda_is_dominated_by_hda() {
    let workload = mixed_workload();
    let res = AcceleratorClass::Mobile.resources();
    let dse = DseEngine::new(DseConfig::fast());
    let hda = dse
        .co_optimize(
            &workload,
            res,
            &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao],
        )
        .best()
        .expect("non-empty design space")
        .edp();
    for style in DataflowStyle::ALL {
        let sm = dse.evaluate_config(
            &workload,
            &AcceleratorConfig::sm_fda(style, 2, res).unwrap(),
        );
        assert!(hda < sm.edp(), "{style}: HDA {hda} vs SM-FDA {}", sm.edp());
    }
}

/// Sec. V-B scheduler ablation: Herald's scheduler beats the greedy
/// baseline on a heterogeneous workload.
#[test]
fn herald_scheduler_beats_greedy() {
    let graph = TaskGraph::new(&mixed_workload());
    let acc = AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap();
    let cost = CostModel::default();
    let herald = HeraldScheduler::default()
        .schedule_and_simulate(&graph, &acc, &cost)
        .unwrap();
    let greedy = GreedyScheduler::default()
        .schedule_and_simulate(&graph, &acc, &cost)
        .unwrap();
    assert!(herald.edp() < greedy.edp());
}

/// Fig. 13: rescheduling a foreign workload on a fixed design works and
/// stays within sane bounds of the matched design.
#[test]
fn workload_change_is_graceful() {
    let res = AcceleratorClass::Edge.resources();
    let dse = DseEngine::new(DseConfig::fast());
    let a = mixed_workload();
    let b = MultiDnnWorkload::new("other")
        .with_model(zoo::mobilenet_v1(), 2)
        .with_model(zoo::gnmt(), 1);
    let design_a = dse
        .co_optimize(&a, res, &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .best()
        .expect("non-empty design space")
        .clone();
    let matched_b = dse
        .co_optimize(&b, res, &[DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .best()
        .expect("non-empty design space")
        .edp();
    let mismatched_b = dse.reschedule(&b, &design_a);
    // Running B on A's hardware costs something, but not an order of
    // magnitude (paper: ~4% latency, ~0.1% energy).
    assert!(mismatched_b.edp() < 3.0 * matched_b);
}

/// The three search strategies all find valid designs, and exhaustive is
/// at least as good as its binary subset.
#[test]
fn search_strategies_are_consistent() {
    let workload = herald_workloads::single_model(zoo::mobilenet_v2(), 2);
    let res = AcceleratorClass::Edge.resources();
    let styles = [DataflowStyle::Nvdla, DataflowStyle::ShiDianNao];
    let run = |strategy| {
        let cfg = DseConfig {
            strategy,
            pe_steps: 8,
            bw_steps: 2,
            ..DseConfig::fast()
        };
        DseEngine::new(cfg)
            .co_optimize(&workload, res, &styles)
            .best()
            .expect("non-empty design space")
            .edp()
    };
    let exhaustive = run(SearchStrategy::Exhaustive);
    let binary = run(SearchStrategy::BinarySampling);
    let random = run(SearchStrategy::Random { samples: 6, seed: 3 });
    assert!(exhaustive <= binary + 1e-15);
    assert!(random.is_finite() && binary.is_finite());
}

/// Umbrella-crate prelude round trip: everything needed for the README
/// example is exported.
#[test]
fn prelude_supports_readme_flow() {
    let workload = herald::workloads::mlperf(1);
    let graph = TaskGraph::new(&workload);
    assert_eq!(graph.len(), workload.total_layers());
    let acc = AcceleratorConfig::fda(DataflowStyle::Eyeriss, AcceleratorClass::Edge.resources());
    let report = ScheduleSimulator::new(&graph, &acc, &CostModel::default())
        .simulate(
            &HeraldScheduler::default().schedule(&graph, &acc, &CostModel::default()),
        )
        .unwrap();
    assert!(report.total_latency_s() > 0.0);
    assert!(report.score(Metric::Edp) > 0.0);
}
