//! Property-style tests over the fleet-composition search: for
//! seeded-random scenarios and chip menus, the Pareto frontier is
//! non-empty and mutually non-dominated, every non-frontier simulated
//! candidate is dominated by some frontier point, the pruning counters
//! account for every enumerated candidate, the budget filter is exact,
//! and the whole outcome is bit-identical across repeated searches.
//!
//! The build environment cannot fetch `proptest`, so cases are generated
//! deterministically from the same SplitMix64 PRNG the DSE uses — every
//! run exercises the identical case set, which also makes failures
//! trivially reproducible.

use herald::prelude::*;
use herald_core::pareto::dominates_nd;
use herald_core::rng::SplitMix64;
use herald_workloads::Scenario;

const CASES: usize = 5;

/// Seeded fleet-mix scenarios with varying tenancy, load and deadlines.
fn gen_scenario(rng: &mut SplitMix64) -> Scenario {
    let seed = rng.next_u64();
    herald::workloads::fleet_mix_stream(
        2 + rng.gen_range(0, 3),
        50.0 + rng.gen_range(0, 4) as f64 * 25.0,
        0.02 + rng.gen_range(0, 3) as f64 * 0.02,
        0.06,
        seed,
    )
}

/// Seeded menus of 2-3 chip designs over two provisioning points.
fn gen_menu(rng: &mut SplitMix64) -> Vec<AcceleratorConfig> {
    let edge = AcceleratorClass::Edge.resources();
    let small = HardwareResources::new(512, 8.0, 2 << 20);
    let styles = [
        DataflowStyle::Nvdla,
        DataflowStyle::ShiDianNao,
        DataflowStyle::Eyeriss,
    ];
    let mut menu = vec![
        AcceleratorConfig::fda(styles[rng.gen_range(0, 3)], edge),
        AcceleratorConfig::fda(styles[rng.gen_range(0, 3)], small),
    ];
    if rng.gen_range(0, 2) == 1 {
        menu.push(AcceleratorConfig::rda(small));
    }
    menu
}

fn search(scenario: &Scenario, menu: &[AcceleratorConfig]) -> FleetSearchOutcome {
    FleetDseEngine::new(FleetDseConfig::fast())
        .search(scenario, menu)
        .expect("fleet search succeeds on generated cases")
}

#[test]
fn frontier_points_are_mutually_non_dominated_and_cover_the_rest() {
    let mut rng = SplitMix64::seed_from_u64(0xF1EE7);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng);
        let menu = gen_menu(&mut rng);
        let outcome = search(&scenario, &menu);
        let frontier = outcome.frontier();
        assert!(!frontier.is_empty(), "case {case}: empty frontier");
        // No frontier point is dominated by any simulated point.
        for f in &frontier {
            for p in outcome.points() {
                assert!(
                    !dominates_nd(&p.objectives(), &f.objectives()),
                    "case {case}: frontier point {} ({:?}) dominated by {} ({:?})",
                    f.composition,
                    f.policy,
                    p.composition,
                    p.policy
                );
            }
        }
        // Every non-frontier simulated candidate is dominated by some
        // frontier point (dominance is a strict partial order, so every
        // dominated point has a maximal dominator on the frontier).
        for (i, p) in outcome.points().iter().enumerate() {
            if outcome.frontier_indices().contains(&i) {
                continue;
            }
            assert!(
                frontier
                    .iter()
                    .any(|f| dominates_nd(&f.objectives(), &p.objectives())),
                "case {case}: non-frontier point {} ({:?}) undominated",
                p.composition,
                p.policy
            );
        }
    }
}

#[test]
fn searches_are_bit_identical_across_runs() {
    let mut rng = SplitMix64::seed_from_u64(0xDE7E12);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng);
        let menu = gen_menu(&mut rng);
        let a = search(&scenario, &menu);
        let b = search(&scenario, &menu);
        assert_eq!(a, b, "case {case}: outcome drifted between runs");
    }
}

#[test]
fn pruning_counters_account_for_every_candidate() {
    let mut rng = SplitMix64::seed_from_u64(0xACC0);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng);
        let menu = gen_menu(&mut rng);
        let outcome = search(&scenario, &menu);
        let stats = outcome.stats();
        // Candidates = compositions-in-budget x policies, exactly
        // partitioned into memo skips, dominance skips and simulations.
        let m = menu.len();
        let compositions = m + m * (m + 1) / 2; // sizes 1 and 2
        assert_eq!(
            stats.candidates(),
            (compositions - stats.budget_filtered) * DispatchPolicy::ALL.len(),
            "case {case}"
        );
        assert_eq!(stats.simulated, outcome.points().len(), "case {case}");
        assert_eq!(
            stats.skipped() + stats.simulated,
            stats.candidates(),
            "case {case}"
        );
        // No budget configured: nothing may be budget-filtered.
        assert_eq!(stats.budget_filtered, 0, "case {case}");
    }
}

#[test]
fn budget_filter_and_best_under_budget_are_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xB0D6E7);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng);
        let menu = gen_menu(&mut rng);
        let min_area = menu
            .iter()
            .map(AcceleratorConfig::area_mm2)
            .fold(f64::INFINITY, f64::min);
        let max_area = menu
            .iter()
            .map(AcceleratorConfig::area_mm2)
            .fold(0.0, f64::max);
        // Budget admitting every single chip but not every pair.
        let budget = max_area + min_area / 2.0;
        let mut cfg = FleetDseConfig::fast();
        cfg.max_area_mm2 = Some(budget);
        let outcome = FleetDseEngine::new(cfg)
            .search(&scenario, &menu)
            .expect("budgeted search succeeds");
        // Exactness: every simulated point fits, and the filtered count
        // matches a direct enumeration of over-budget compositions.
        for p in outcome.points() {
            assert!(p.area_mm2 <= budget, "case {case}: {}", p.composition);
        }
        let mut over = 0usize;
        for i in 0..menu.len() {
            for j in i..menu.len() {
                if menu[i].area_mm2() + menu[j].area_mm2() > budget {
                    over += 1;
                }
            }
        }
        assert_eq!(outcome.stats().budget_filtered, over, "case {case}");
        // best_under_budget returns an in-budget point minimizing the
        // documented (miss, p99, -throughput, area) key.
        let best = outcome
            .best_under_budget(budget)
            .expect("every single chip fits");
        for p in outcome.points() {
            if p.area_mm2 > budget {
                continue;
            }
            let beats = p.deadline_miss_rate < best.deadline_miss_rate
                || (p.deadline_miss_rate == best.deadline_miss_rate
                    && p.p99_latency_s < best.p99_latency_s)
                || (p.deadline_miss_rate == best.deadline_miss_rate
                    && p.p99_latency_s == best.p99_latency_s
                    && p.throughput_fps > best.throughput_fps);
            assert!(
                !beats,
                "case {case}: {} beats best_under_budget {}",
                p.composition, best.composition
            );
        }
    }
}
