//! Hot-path equivalence suite for the PR-7 optimizations: the
//! fingerprint-served memo tier and batched arrival admission are pure
//! speedups — every observable simulation output must be bit-identical
//! to the slow paths they replace.
//!
//! * **Fingerprint path == structural-key path**: a warm rerun on a
//!   shared [`EvalContext`] serves every scheduling decision through
//!   the 128-bit fingerprint lookup (verify-on-hit against the full
//!   structural key), and must reproduce the cold run — which compiled
//!   everything fresh — to the last bit, with nonzero fingerprint hits
//!   and zero collisions.
//! * **Batched admission == per-event admission**: admitting arrivals
//!   in windows of 1 (the historical event-at-a-time walk), 7 (an
//!   awkward prime), and the default 32 must produce identical reports
//!   under both [`ReschedulePolicy`] variants.

use herald::core::sched::IncrementalScheduler;
use herald::core::sim::{StreamReport, StreamSimulator, DEFAULT_ADMISSION_BATCH};
use herald::prelude::*;

fn edge_maelstrom() -> AcceleratorConfig {
    AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap()
}

fn scenarios() -> [Scenario; 3] {
    [
        herald::workloads::arvr_a_stream(1.0, 1.2),
        herald::workloads::workload_change_trace(2.0, 0.6, 2.0),
        herald::workloads::poisson_mix_stream(1.0, 0.5, 2024),
    ]
}

/// Asserts two stream reports agree on every simulation output (the
/// scheduling-work counters may legitimately differ between a cold and
/// a warm run).
fn assert_same_simulation(a: &StreamReport, b: &StreamReport, label: &str) {
    assert_eq!(a.frames(), b.frames(), "{label}: frame records");
    assert_eq!(a.swaps(), b.swaps(), "{label}: swap records");
    assert_eq!(a.busy_spans(), b.busy_spans(), "{label}: busy spans");
    assert_eq!(a.per_acc(), b.per_acc(), "{label}: per-acc summaries");
    assert_eq!(a.energy(), b.energy(), "{label}: energy");
    assert_eq!(a.makespan_s(), b.makespan_s(), "{label}: makespan");
    assert_eq!(
        a.peak_memory_bytes(),
        b.peak_memory_bytes(),
        "{label}: peak memory"
    );
}

#[test]
fn fingerprint_served_reruns_match_structural_compiles() {
    // Cold run: every schedule is compiled fresh and inserted under its
    // full structural key + fingerprint. Warm rerun on the same
    // context: every decision is served by the fingerprint probe
    // (verified on hit against the structural key). Same bits out.
    for scenario in &scenarios() {
        let ctx = EvalContext::new();
        let run = || {
            Experiment::new(scenario.design_workload())
                .on_accelerator(edge_maelstrom())
                .fast()
                .with_context(ctx.clone())
                .scenario(scenario)
                .unwrap()
        };
        let before = ctx.stats().snapshot();
        let cold = run();
        let after_cold = ctx.stats().snapshot();
        let warm = run();
        let after_warm = ctx.stats().snapshot();

        assert_same_simulation(cold.report(), warm.report(), scenario.name());
        assert_eq!(
            warm.report().scheduler_invocations(),
            0,
            "{}: the warm run must compile nothing",
            scenario.name()
        );
        // The cold run only *inserted* fingerprints; the warm run's
        // per-stream probes hit them — and verification never found a
        // colliding structural key.
        assert_eq!(
            after_cold.fingerprint_hits - before.fingerprint_hits,
            0,
            "{}: distinct stream models cannot hit the memo cold",
            scenario.name()
        );
        assert!(
            after_warm.fingerprint_hits > after_cold.fingerprint_hits,
            "{}: warm rerun must be fingerprint-served",
            scenario.name()
        );
        assert_eq!(
            after_warm.fingerprint_collisions,
            0,
            "{}: no collisions on real workloads",
            scenario.name()
        );
    }
}

#[test]
fn batched_admission_is_bit_identical_to_per_event() {
    // Batch caps 1 (event-at-a-time), 7 (splits windows awkwardly) and
    // the default 32 must not change a single bit of the simulation,
    // whichever rescheduling policy runs above the core.
    let config = edge_maelstrom();
    for scenario in &scenarios() {
        for policy in [
            ReschedulePolicy::Incremental,
            ReschedulePolicy::FullReschedule,
        ] {
            let run = |cap: usize| -> StreamReport {
                let ctx = EvalContext::new();
                let scheduler = HeraldScheduler::new(SchedulerConfig::default());
                let sim = StreamSimulator::new(&config, ctx.cost_model())
                    .with_policy(policy)
                    .with_context(&ctx)
                    .with_admission_batch(cap);
                match policy {
                    ReschedulePolicy::Incremental => {
                        let inc = IncrementalScheduler::new(scheduler, ctx.clone());
                        sim.simulate(&inc, scenario).unwrap()
                    }
                    ReschedulePolicy::FullReschedule => sim.simulate(&scheduler, scenario).unwrap(),
                }
            };
            let per_event = run(1);
            let batched_7 = run(7);
            let batched_default = run(DEFAULT_ADMISSION_BATCH);
            let label = format!("{} under {policy:?}", scenario.name());
            assert_eq!(
                per_event, batched_7,
                "{label}: batch cap 7 diverged from per-event admission"
            );
            assert_eq!(
                per_event, batched_default,
                "{label}: default batching diverged from per-event admission"
            );
        }
    }
}
