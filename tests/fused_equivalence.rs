//! The fused-scheduling equivalence suite: fusion granularity 1 (the
//! default, and Herald's whole-layer placement) must be **bit-identical**
//! to an explicit `fusion(1)` run across the streaming, one-shot, and
//! fleet paths — while fused and unfused schedules of the same graph
//! must never share a memo slot, and some granularity above 1 must
//! actually change the constructed schedule (otherwise the knob is
//! dead).

use herald::prelude::*;

fn edge_maelstrom() -> AcceleratorConfig {
    AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap()
}

/// Streams `scenario` with the default scheduler and with fusion pinned
/// to 1, and asserts the two simulations agree to the last bit.
fn assert_fusion1_streams_identically(scenario: &Scenario) {
    let run = |fusion: Option<usize>| {
        let mut e = Experiment::new(scenario.design_workload())
            .on_accelerator(edge_maelstrom())
            .fast();
        if let Some(f) = fusion {
            e = e.fusion(f);
        }
        e.scenario(scenario).unwrap()
    };
    let default = run(None);
    let explicit = run(Some(1));
    let (a, b) = (default.report(), explicit.report());
    assert_eq!(a.frames(), b.frames(), "{}: frame records", scenario.name());
    assert_eq!(a.swaps(), b.swaps(), "{}: swap records", scenario.name());
    assert_eq!(a.busy_spans(), b.busy_spans(), "{}: spans", scenario.name());
    assert_eq!(a.energy(), b.energy(), "{}: energy", scenario.name());
    assert_eq!(
        a.makespan_s().to_bits(),
        b.makespan_s().to_bits(),
        "{}: makespan",
        scenario.name()
    );
    assert_eq!(a.peak_memory_bytes(), b.peak_memory_bytes());
    assert_eq!(a.events_processed(), b.events_processed());
}

#[test]
fn fusion_one_is_bit_identical_on_the_arvr_stream() {
    assert_fusion1_streams_identically(&herald::workloads::arvr_a_stream(1.0, 1.2));
}

#[test]
fn fusion_one_is_bit_identical_on_the_workload_change_trace() {
    assert_fusion1_streams_identically(&herald::workloads::workload_change_trace(2.0, 0.6, 2.0));
}

#[test]
fn fusion_one_is_bit_identical_on_a_fleet_run() {
    // The fleet path compiles per-chip schedules through the same
    // placement core; pinning granularity 1 must not move a single bit
    // of the fleet report either.
    let scenario = herald::workloads::fleet_mix_stream(2, 60.0, 0.1, 0.1, 7);
    let chip = edge_maelstrom();
    let fleet = FleetConfig::homogeneous(&chip, 2);
    let run = |fusion: Option<usize>| {
        let mut e = Experiment::new(scenario.design_workload()).fast();
        if let Some(f) = fusion {
            e = e.fusion(f);
        }
        e.fleet(&fleet, &scenario).unwrap()
    };
    let default = run(None);
    let explicit = run(Some(1));
    let (a, b) = (default.report(), explicit.report());
    assert_eq!(a.per_chip(), b.per_chip());
    assert_eq!(a.assignments(), b.assignments());
    assert_eq!(a.dropped(), b.dropped());
    assert_eq!(a.makespan_s().to_bits(), b.makespan_s().to_bits());
    assert_eq!(
        a.latency_percentile(0.99).to_bits(),
        b.latency_percentile(0.99).to_bits()
    );
}

#[test]
fn fused_and_unfused_runs_never_share_memo_slots() {
    // Same workload, same accelerator, same cost model — only the fusion
    // granularity differs. The second run must be a full scheduler run
    // (zero cache hits against the first run's memo); re-running the
    // first granularity afterwards must hit its own slot.
    let ctx = EvalContext::new();
    let workload = herald::workloads::arvr_a_stream(1.0, 1.2).design_workload();
    let run = |fusion: usize| {
        Experiment::new(workload.clone())
            .on_accelerator(edge_maelstrom())
            .fast()
            .with_context(ctx.clone())
            .fusion(fusion)
            .run()
            .unwrap()
    };
    run(1);
    let runs_after_unfused = ctx.stats().scheduler_runs();
    let hits_after_unfused = ctx.stats().schedule_cache_hits();
    assert!(runs_after_unfused > 0);

    run(3);
    assert_eq!(
        ctx.stats().schedule_cache_hits(),
        hits_after_unfused,
        "a fused run must never be served from the unfused memo slot"
    );
    assert!(
        ctx.stats().scheduler_runs() > runs_after_unfused,
        "the fused schedule must be constructed from scratch"
    );

    let runs_after_fused = ctx.stats().scheduler_runs();
    run(1);
    assert_eq!(
        ctx.stats().scheduler_runs(),
        runs_after_fused,
        "repeating granularity 1 must be a pure memo hit"
    );
    assert!(ctx.stats().schedule_cache_hits() > hits_after_unfused);
}

#[test]
fn some_fused_granularity_changes_the_schedule() {
    // The knob must be live: on the AR/VR design workload at least one
    // granularity above 1 commits groups differently enough to move the
    // simulated latency or energy.
    let workload = herald::workloads::arvr_a_stream(1.0, 1.2).design_workload();
    let run = |fusion: usize| {
        Experiment::new(workload.clone())
            .on_accelerator(edge_maelstrom())
            .fast()
            .fusion(fusion)
            .run()
            .unwrap()
    };
    let base = run(1);
    let changed = (2..=6).any(|g| {
        let fused = run(g);
        fused.latency_s().to_bits() != base.latency_s().to_bits()
            || fused.energy_j().to_bits() != base.energy_j().to_bits()
    });
    assert!(
        changed,
        "granularities 2..=6 all produced bit-identical executions"
    );
}

#[test]
fn dse_fusion_sweep_carries_both_granularities() {
    // End-to-end through the facade: a fusion-levels sweep doubles the
    // design cloud and tags every point with the granularity it was
    // scheduled under.
    let workload = herald::workloads::arvr_a_stream(1.0, 1.2).design_workload();
    let outcome = Experiment::new(workload)
        .on(AcceleratorClass::Edge)
        .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .fast()
        .fusion_levels([1, 3])
        .run()
        .unwrap();
    assert!(outcome.points().iter().any(|p| p.fusion == 1));
    assert!(outcome.points().iter().any(|p| p.fusion == 3));
    let unfused = outcome.points().iter().filter(|p| p.fusion == 1).count();
    assert_eq!(outcome.points().len(), unfused * 2);
}
