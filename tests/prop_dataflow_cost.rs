//! Property-style tests over the dataflow and cost substrates: for
//! seeded-random layer shapes and PE budgets, mappings are legal and
//! costs respect the model's invariants.
//!
//! The build environment cannot fetch `proptest`, so cases are generated
//! deterministically from the same SplitMix64 PRNG the DSE uses.

use herald::prelude::*;
use herald_core::rng::SplitMix64;
use herald_dataflow::validate_mapping;
use herald_models::LayerDims;

const CASES: usize = 128;

/// Random-but-plausible convolution layers (dimensions in realistic DNN
/// ranges, filters that fit the input).
fn gen_conv_layer(rng: &mut SplitMix64) -> Layer {
    let k = rng.gen_range(1, 513) as u32;
    let c = rng.gen_range(1, 513) as u32;
    let y = rng.gen_range(7, 129) as u32;
    let r = [1u32, 3, 5, 7][rng.gen_range(0, 4)];
    let stride = rng.gen_range(1, 3) as u32;
    Layer::new(
        "prop",
        LayerOp::Conv2d,
        LayerDims::conv(k, c, y, y, r, r)
            .with_stride(stride)
            .with_pad(r / 2),
    )
}

/// Random depth-wise layers (k == c).
fn gen_depthwise_layer(rng: &mut SplitMix64) -> Layer {
    let c = rng.gen_range(1, 513) as u32;
    let y = rng.gen_range(7, 129) as u32;
    let r = [3u32, 5][rng.gen_range(0, 2)];
    Layer::new(
        "dw",
        LayerOp::DepthwiseConv,
        LayerDims::conv(c, c, y, y, r, r).with_pad(r / 2),
    )
}

/// Random PE budgets, including awkward non-powers-of-two.
fn gen_pes(rng: &mut SplitMix64) -> u32 {
    match rng.gen_range(0, 6) {
        0 => rng.gen_range(1, 65) as u32,
        1 => 100,
        2 => 256,
        3 => 896,
        4 => 1024,
        _ => 12032,
    }
}

/// Every mapping the builder produces is legal.
#[test]
fn mappings_are_always_legal() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0001);
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            assert_eq!(validate_mapping(&m, &layer), Ok(()), "{style} {pes} PEs");
        }
    }
}

/// Depth-wise layers never get spatial channel accumulation.
#[test]
fn depthwise_mappings_are_legal() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0002);
    for _ in 0..CASES {
        let layer = gen_depthwise_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            assert_eq!(validate_mapping(&m, &layer), Ok(()), "{style} {pes} PEs");
        }
    }
}

/// Compute cycles are bounded below by the ideal (MACs / PEs) and above
/// by fully serial execution.
#[test]
fn compute_cycles_within_roofline() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0003);
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            let cycles = m.compute_cycles(&layer);
            let ideal = layer.macs().div_ceil(u64::from(pes));
            assert!(cycles >= ideal, "{style}: {cycles} < ideal {ideal}");
            assert!(cycles <= layer.macs(), "{style}: {cycles} > serial");
        }
    }
}

/// Utilization is a fraction and active PEs never exceed the budget.
#[test]
fn utilization_is_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0004);
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            assert!(m.active_pes() >= 1);
            assert!(m.active_pes() <= pes);
            assert!(m.utilization() > 0.0 && m.utilization() <= 1.0);
        }
    }
}

/// Costs are finite and positive; EDP factorizes.
#[test]
fn costs_are_finite_and_positive() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0005);
    let model = CostModel::default();
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        for style in DataflowStyle::ALL {
            let c = model.evaluate(&layer, style, pes, 16.0);
            assert!(c.latency_s.is_finite() && c.latency_s > 0.0);
            assert!(c.energy_j().is_finite() && c.energy_j() > 0.0);
            assert!((c.edp() - c.latency_s * c.energy_j()).abs() < 1e-12 * c.edp().max(1.0));
        }
    }
}

/// More bandwidth never increases latency and never changes energy.
#[test]
fn bandwidth_monotonicity() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0006);
    let model = CostModel::default();
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        for style in DataflowStyle::ALL {
            let slow = model.evaluate(&layer, style, pes, 8.0);
            let fastc = model.evaluate(&layer, style, pes, 64.0);
            assert!(fastc.latency_s <= slow.latency_s + 1e-15);
            assert!((fastc.energy_j() - slow.energy_j()).abs() < 1e-18 + 1e-9 * slow.energy_j());
        }
    }
}

/// Global-buffer traffic covers at least the compulsory weight and
/// output volumes (every weight and output element is touched once;
/// strided layers may legitimately skip input pixels).
#[test]
fn traffic_covers_compulsory() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0007);
    let model = CostModel::default();
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let pes = gen_pes(&mut rng);
        let compulsory = layer.weight_elems() + layer.output_shape().elems();
        let dram =
            layer.weight_elems() + layer.input_shape().elems() + layer.output_shape().elems();
        for style in DataflowStyle::ALL {
            let c = model.evaluate(&layer, style, pes, 16.0);
            assert!(c.traffic.gb_total() >= compulsory, "{style}");
            assert_eq!(c.traffic.dram_words, dram);
        }
    }
}

/// The RDA query is never better than physics and pays its taxes: when
/// it lands on the best fixed style, it consumes strictly more energy.
#[test]
fn rda_is_best_style_plus_taxes() {
    let mut rng = SplitMix64::seed_from_u64(0xDF_0008);
    let model = CostModel::default();
    for _ in 0..CASES {
        let layer = gen_conv_layer(&mut rng);
        let rda = model.evaluate_rda(&layer, 1024, 16.0, Metric::Edp);
        let (_, best_fixed) = model.best_style(&layer, 1024, 16.0, Metric::Edp);
        if rda.style == best_fixed.style {
            assert!(rda.energy_j() > best_fixed.energy_j());
        }
    }
}
