//! Property-based tests over the dataflow and cost substrates: for random
//! layer shapes and PE budgets, mappings are legal and costs respect the
//! model's invariants.

use herald::prelude::*;
use herald_dataflow::validate_mapping;
use herald_models::LayerDims;
use proptest::prelude::*;

/// Random-but-plausible convolution layers (dimensions in realistic DNN
/// ranges, filters that fit the input).
fn arb_conv_layer() -> impl Strategy<Value = Layer> {
    (
        1u32..=512,        // k
        1u32..=512,        // c
        7u32..=128,        // y = x
        prop_oneof![Just(1u32), Just(3), Just(5), Just(7)], // r = s
        1u32..=2,          // stride
    )
        .prop_map(|(k, c, y, r, stride)| {
            Layer::new(
                "prop",
                LayerOp::Conv2d,
                LayerDims::conv(k, c, y, y, r, r)
                    .with_stride(stride)
                    .with_pad(r / 2),
            )
        })
}

/// Random depth-wise layers (k == c).
fn arb_depthwise_layer() -> impl Strategy<Value = Layer> {
    (1u32..=512, 7u32..=128, prop_oneof![Just(3u32), Just(5)]).prop_map(|(c, y, r)| {
        Layer::new(
            "dw",
            LayerOp::DepthwiseConv,
            LayerDims::conv(c, c, y, y, r, r).with_pad(r / 2),
        )
    })
}

/// Random PE budgets, including awkward non-powers-of-two.
fn arb_pes() -> impl Strategy<Value = u32> {
    prop_oneof![
        1u32..=64,
        Just(100u32),
        Just(256u32),
        Just(896u32),
        Just(1024u32),
        Just(12032u32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every mapping the builder produces is legal.
    #[test]
    fn mappings_are_always_legal(layer in arb_conv_layer(), pes in arb_pes()) {
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            prop_assert_eq!(validate_mapping(&m, &layer), Ok(()));
        }
    }

    /// Depth-wise layers never get spatial channel accumulation.
    #[test]
    fn depthwise_mappings_are_legal(layer in arb_depthwise_layer(), pes in arb_pes()) {
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            prop_assert_eq!(validate_mapping(&m, &layer), Ok(()));
        }
    }

    /// Compute cycles are bounded below by the ideal (MACs / PEs) and above
    /// by fully serial execution.
    #[test]
    fn compute_cycles_within_roofline(layer in arb_conv_layer(), pes in arb_pes()) {
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            let cycles = m.compute_cycles(&layer);
            let ideal = layer.macs().div_ceil(u64::from(pes));
            prop_assert!(cycles >= ideal, "{style}: {cycles} < ideal {ideal}");
            prop_assert!(cycles <= layer.macs(), "{style}: {cycles} > serial");
        }
    }

    /// Utilization is a fraction and active PEs never exceed the budget.
    #[test]
    fn utilization_is_bounded(layer in arb_conv_layer(), pes in arb_pes()) {
        for style in DataflowStyle::ALL {
            let m = MappingBuilder::new(style, pes).best(&layer);
            prop_assert!(m.active_pes() >= 1);
            prop_assert!(m.active_pes() <= pes);
            prop_assert!(m.utilization() > 0.0 && m.utilization() <= 1.0);
        }
    }

    /// Costs are finite and positive; EDP factorizes.
    #[test]
    fn costs_are_finite_and_positive(layer in arb_conv_layer(), pes in arb_pes()) {
        let model = CostModel::default();
        for style in DataflowStyle::ALL {
            let c = model.evaluate(&layer, style, pes, 16.0);
            prop_assert!(c.latency_s.is_finite() && c.latency_s > 0.0);
            prop_assert!(c.energy_j().is_finite() && c.energy_j() > 0.0);
            prop_assert!((c.edp() - c.latency_s * c.energy_j()).abs() < 1e-12 * c.edp().max(1.0));
        }
    }

    /// More bandwidth never increases latency and never changes energy.
    #[test]
    fn bandwidth_monotonicity(layer in arb_conv_layer(), pes in arb_pes()) {
        let model = CostModel::default();
        for style in DataflowStyle::ALL {
            let slow = model.evaluate(&layer, style, pes, 8.0);
            let fastc = model.evaluate(&layer, style, pes, 64.0);
            prop_assert!(fastc.latency_s <= slow.latency_s + 1e-15);
            prop_assert!((fastc.energy_j() - slow.energy_j()).abs() < 1e-18 + 1e-9 * slow.energy_j());
        }
    }

    /// Global-buffer traffic covers at least the compulsory weight and
    /// output volumes (every weight and output element is touched once;
    /// strided layers may legitimately skip input pixels).
    #[test]
    fn traffic_covers_compulsory(layer in arb_conv_layer(), pes in arb_pes()) {
        let model = CostModel::default();
        let compulsory = layer.weight_elems() + layer.output_shape().elems();
        let dram = layer.weight_elems()
            + layer.input_shape().elems()
            + layer.output_shape().elems();
        for style in DataflowStyle::ALL {
            let c = model.evaluate(&layer, style, pes, 16.0);
            prop_assert!(c.traffic.gb_total() >= compulsory, "{style}");
            prop_assert_eq!(c.traffic.dram_words, dram);
        }
    }

    /// The RDA query is never worse than the best FDA style by more than
    /// its reconfiguration overheads, and never better than physics: its
    /// latency at least matches the best style's compute bound.
    #[test]
    fn rda_is_best_style_plus_taxes(layer in arb_conv_layer()) {
        let model = CostModel::default();
        let rda = model.evaluate_rda(&layer, 1024, 16.0, Metric::Edp);
        let (_, best_fixed) = model.best_style(&layer, 1024, 16.0, Metric::Edp);
        // Same style choice implies RDA pays strictly more energy.
        if rda.style == best_fixed.style {
            prop_assert!(rda.energy_j() > best_fixed.energy_j());
        }
    }
}
