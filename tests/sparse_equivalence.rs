//! The sparse differential layer: density 1.0 (and ungated hardware)
//! must be **bit-identical** to the pre-density model on the existing
//! golden scenarios, and the density knob must only ever make layers
//! cheaper — latency, energy and traffic are non-increasing as density
//! falls, on every dataflow class and on the reconfigurable array.
//!
//! The build environment cannot fetch `proptest`, so cases are
//! generated deterministically from the same SplitMix64 PRNG the DSE
//! uses.

use herald::prelude::*;
use herald_core::rng::SplitMix64;
use herald_models::LayerDims;
use herald_workloads::{sparse_mix_stream, transformer_decode_stream};

fn edge_maelstrom() -> AcceleratorConfig {
    AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap()
}

/// Streams `scenario` on the ungated flagship and its sparse-gated twin
/// and asserts the timelines agree to the last bit — every model in the
/// goldens is dense, so the gating hardware must be invisible.
fn assert_gating_invisible_on(scenario: &Scenario) {
    let run = |chip: AcceleratorConfig| {
        Experiment::new(scenario.design_workload())
            .on_accelerator(chip)
            .fast()
            .scenario(scenario)
            .unwrap()
    };
    let ungated = run(edge_maelstrom());
    let gated = run(edge_maelstrom().with_sparse_gating());
    let (a, b) = (ungated.report(), gated.report());
    assert_eq!(a.frames(), b.frames(), "{}: frame records", scenario.name());
    assert_eq!(a.swaps(), b.swaps(), "{}: swap records", scenario.name());
    assert_eq!(
        a.busy_spans(),
        b.busy_spans(),
        "{}: busy spans",
        scenario.name()
    );
    assert_eq!(a.energy(), b.energy(), "{}: energy", scenario.name());
    assert_eq!(
        a.makespan_s().to_bits(),
        b.makespan_s().to_bits(),
        "{}: makespan",
        scenario.name()
    );
}

#[test]
fn dense_golden_scenarios_are_bit_identical_under_gating() {
    assert_gating_invisible_on(&herald_workloads::arvr_a_stream(1.0, 1.2));
    assert_gating_invisible_on(&herald_workloads::workload_change_trace(30.0, 0.1, 0.4));
    assert_gating_invisible_on(&herald_workloads::diurnal_ramp_trace(
        2, 2.0, 6.0, 0.5, 4.0, 11,
    ));
}

#[test]
fn uniform_density_one_is_the_identity() {
    let model = herald_models::zoo::resnet50();
    let same = model.clone().with_uniform_density(1.0);
    assert_eq!(same, model, "density 1.0 must not touch the model");
    assert_eq!(same.name(), "Resnet50", "the identity must keep the name");
}

#[test]
fn ungated_hardware_ignores_density_bit_for_bit() {
    // A sparse workload on an ungated chip costs exactly what the dense
    // workload costs: the sparse branch requires gating hardware.
    let dense = herald_workloads::single_model(herald_models::zoo::mobilenet_v2(), 2);
    let sparse = MultiDnnWorkload::new("sparse-probe").with_model(
        herald_models::zoo::mobilenet_v2().with_uniform_density(0.3),
        2,
    );
    let run = |w: MultiDnnWorkload| {
        Experiment::new(w)
            .on_accelerator(edge_maelstrom())
            .fast()
            .run()
            .unwrap()
    };
    let (d, s) = (run(dense), run(sparse));
    assert_eq!(d.latency_s().to_bits(), s.latency_s().to_bits());
    assert_eq!(d.energy_j().to_bits(), s.energy_j().to_bits());
}

/// Random-but-plausible layers spanning the shapes the zoo uses:
/// convolutions, depth-wise convolutions, and GEMM/FC layers.
fn gen_layer(rng: &mut SplitMix64) -> Layer {
    match rng.gen_range(0, 3) {
        0 => {
            let k = rng.gen_range(8, 513) as u32;
            let c = rng.gen_range(3, 513) as u32;
            let y = rng.gen_range(7, 129) as u32;
            let r = [1u32, 3, 5][rng.gen_range(0, 3)];
            Layer::new(
                "conv",
                LayerOp::Conv2d,
                LayerDims::conv(k, c, y, y, r, r).with_pad(r / 2),
            )
        }
        1 => {
            let c = rng.gen_range(8, 513) as u32;
            let y = rng.gen_range(7, 129) as u32;
            Layer::new(
                "dw",
                LayerOp::DepthwiseConv,
                LayerDims::conv(c, c, y, y, 3, 3).with_pad(1),
            )
        }
        _ => {
            let k = rng.gen_range(32, 4097) as u32;
            let c = rng.gen_range(32, 4097) as u32;
            let m = [1u32, 16, 64, 256][rng.gen_range(0, 4)];
            Layer::new("gemm", LayerOp::Fc, LayerDims::gemm(k, c, m))
        }
    }
}

const DENSITY_LADDER: [f64; 6] = [1.0, 0.9, 0.75, 0.5, 0.3, 0.1];

#[test]
fn gated_costs_are_monotone_in_density_for_every_class() {
    let model = CostModel::default();
    let mut rng = SplitMix64::seed_from_u64(0xDE_0010);
    for case in 0..64 {
        let layer = gen_layer(&mut rng);
        let pes = [256u32, 1024, 4096][rng.gen_range(0, 3)];
        let bw = [8.0f64, 16.0, 64.0][rng.gen_range(0, 3)];
        for style in DataflowStyle::ALL {
            let mut prev: Option<LayerCost> = None;
            for &d in &DENSITY_LADDER {
                let cost =
                    model.evaluate_gated(&layer.clone().with_density(d), style, pes, bw, true);
                if let Some(p) = &prev {
                    assert!(
                        cost.latency_s <= p.latency_s
                            && cost.energy.total_j() <= p.energy.total_j()
                            && cost.traffic_cycles <= p.traffic_cycles
                            && cost.total_cycles <= p.total_cycles,
                        "case {case} {style:?} d={d}: sparser must never cost more"
                    );
                }
                prev = Some(cost);
            }
        }
        // The reconfigurable array picks the best style per layer, and
        // the winning style may switch as density falls — so only the
        // *selected* metric is guaranteed monotone (a min over
        // per-style monotone curves), not every scalar of the winner.
        for metric in [Metric::Latency, Metric::Energy, Metric::Edp] {
            let mut prev: Option<f64> = None;
            for &d in &DENSITY_LADDER {
                let score = model
                    .evaluate_rda_gated(&layer.clone().with_density(d), pes, bw, metric, true)
                    .score(metric);
                if let Some(p) = prev {
                    assert!(
                        score <= p,
                        "case {case} RDA {metric:?} d={d}: sparser must never cost more"
                    );
                }
                prev = Some(score);
            }
        }
    }
}

#[test]
fn gating_never_changes_dense_layer_costs() {
    // Gated vs ungated on a dense layer: bit-identical, every class.
    let model = CostModel::default();
    let mut rng = SplitMix64::seed_from_u64(0xDE_0020);
    for _ in 0..64 {
        let layer = gen_layer(&mut rng);
        for style in DataflowStyle::ALL {
            let gated = model.evaluate_gated(&layer, style, 1024, 16.0, true);
            let plain = model.evaluate(&layer, style, 1024, 16.0);
            assert_eq!(
                gated, plain,
                "{style:?}: dense layers must not see the gate"
            );
        }
    }
}

#[test]
fn generators_are_deterministic_and_pull_matches_materialized() {
    // Bit-identical repeats (the Scenario JSON captures every f64 bit).
    let decode = || transformer_decode_stream(3, 80, 0.004, 0.05, 7);
    let sparse = || sparse_mix_stream(8, 120.0, 0.05, 0.3, 41);
    assert_eq!(
        serde_json::to_string(&decode()).unwrap(),
        serde_json::to_string(&decode()).unwrap(),
        "decode generation must be bit-identical across repeats"
    );
    assert_eq!(
        serde_json::to_string(&sparse()).unwrap(),
        serde_json::to_string(&sparse()).unwrap(),
        "sparse-mix generation must be bit-identical across repeats"
    );
    // The pull iterator and the materialized walk agree on every stream.
    for scenario in [decode(), sparse()] {
        for stream in scenario.streams() {
            let pulled: Vec<f64> =
                herald_workloads::seeded::arrival_iter(stream.arrival(), scenario.horizon_s())
                    .collect();
            let materialized =
                herald_workloads::seeded::arrival_times(stream.arrival(), scenario.horizon_s());
            assert_eq!(
                pulled,
                materialized,
                "{}: pull != materialized",
                stream.name()
            );
        }
    }
}

#[test]
fn sparse_mix_densities_come_from_the_published_grid() {
    let scenario = sparse_mix_stream(12, 120.0, 0.05, 0.3, 41);
    for stream in scenario.streams() {
        for inst in stream.workload().instances() {
            for layer in inst.model().layers() {
                assert!(
                    herald_workloads::SPARSE_DENSITY_GRID.contains(&layer.density()),
                    "{}: density {} off the grid",
                    stream.name(),
                    layer.density()
                );
            }
        }
    }
}
