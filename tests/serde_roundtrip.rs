//! Serialization round trips for every public data structure a downstream
//! tool would persist: configs, models, workloads, mappings, costs,
//! schedules and reports.

use herald::prelude::*;
use herald_arch::{AcceleratorConfig, Partition};
use herald_core::exec::ScheduleSimulator;
use herald_core::task::TaskGraph;
use herald_models::{zoo, LayerDims};
use herald_workloads::MultiDnnWorkload;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn layer_dims_and_layers_roundtrip() {
    let dims = LayerDims::conv(64, 3, 224, 224, 7, 7)
        .with_stride(2)
        .with_pad(3);
    assert_eq!(roundtrip(&dims), dims);
    let layer = Layer::new("conv1", LayerOp::Conv2d, dims);
    assert_eq!(roundtrip(&layer), layer);
}

#[test]
fn models_roundtrip_with_dependences() {
    let model = zoo::resnet50();
    let back: DnnModel = roundtrip(&model);
    assert_eq!(back, model);
    // Dependence structure survives.
    let fc = back.layer_id("fc").unwrap();
    assert!(!back.predecessors(fc).is_empty());
}

#[test]
fn workloads_roundtrip() {
    let w = MultiDnnWorkload::new("w")
        .with_model(zoo::mobilenet_v1(), 2)
        .with_model(zoo::gnmt(), 1);
    let back: MultiDnnWorkload = roundtrip(&w);
    assert_eq!(back.total_layers(), w.total_layers());
    assert_eq!(back.model_mix(), w.model_mix());
}

#[test]
fn accelerator_configs_roundtrip() {
    let res = AcceleratorClass::Mobile.resources();
    for cfg in [
        AcceleratorConfig::fda(DataflowStyle::Eyeriss, res),
        AcceleratorConfig::rda(res),
        AcceleratorConfig::sm_fda(DataflowStyle::Nvdla, 2, res).unwrap(),
        AcceleratorConfig::maelstrom(res, Partition::even(2, res.pes, res.bandwidth_gbps)).unwrap(),
    ] {
        assert_eq!(roundtrip(&cfg), cfg);
    }
}

#[test]
fn mappings_and_costs_roundtrip() {
    let layer = Layer::new(
        "l",
        LayerOp::Conv2d,
        LayerDims::conv(64, 64, 56, 56, 3, 3).with_pad(1),
    );
    let mapping = MappingBuilder::new(DataflowStyle::Eyeriss, 1024).best(&layer);
    assert_eq!(roundtrip(&mapping), mapping);
    let cost = CostModel::default().evaluate(&layer, DataflowStyle::Eyeriss, 1024, 16.0);
    assert_eq!(roundtrip(&cost), cost);
}

#[test]
fn schedules_and_reports_roundtrip() {
    let w = herald_workloads::single_model(zoo::mobilenet_v1(), 1);
    let graph = TaskGraph::new(&w);
    let acc = AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap();
    let cost = CostModel::default();
    let schedule = HeraldScheduler::default()
        .schedule(&graph, &acc, &cost)
        .unwrap();
    assert_eq!(roundtrip(&schedule), schedule);
    let report = ScheduleSimulator::new(&graph, &acc, &cost)
        .simulate(&schedule)
        .unwrap();
    let back = roundtrip(&report);
    assert_eq!(back, report);
    assert_eq!(back.total_latency_s(), report.total_latency_s());
}

#[test]
fn scheduler_and_dse_configs_roundtrip() {
    let sc = SchedulerConfig::default();
    let back: SchedulerConfig = roundtrip(&sc);
    assert_eq!(back, sc);
    let dc = DseConfig::default();
    let back: DseConfig = roundtrip(&dc);
    assert_eq!(back, dc);
}
