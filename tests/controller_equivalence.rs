//! End-to-end equivalence and transient-behavior tests for the online
//! fleet controller.
//!
//! The controller's epoch walk replaces the plain `FleetSimulator`
//! dispatch walk, so its most important property is *do-nothing
//! neutrality*: with the static policy, a controlled run must be
//! bit-identical to the uncontrolled fleet on the same scenario — for
//! every dispatch policy, with and without admission control, and
//! through the `Experiment` facade. On top of that, the threshold
//! autoscaler must be repeat-identical (decisions and all) and must
//! measurably beat the static fleet through a diurnal overload
//! transient.

use herald::prelude::*;
use herald_workloads::diurnal_ramp_trace;

/// Edge-class service times are ~0.27-0.33 s/frame, so scenario time
/// scales are seconds, not milliseconds: few-fps rates, sub-second
/// deadlines, second-scale horizons.
fn chip() -> AcceleratorConfig {
    AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources())
}

fn ramp() -> Scenario {
    diurnal_ramp_trace(2, 4.0, 10.0, 0.4, 3.0, 17)
}

#[test]
fn static_controller_is_bit_identical_to_the_fleet_simulator() {
    let scenario = ramp();
    let fleet = FleetConfig::homogeneous(&chip(), 2);
    let control = ControllerConfig::new(0.75, ControllerPolicy::Static);
    for policy in DispatchPolicy::ALL {
        for admission in [
            AdmissionPolicy::AcceptAll,
            AdmissionPolicy::DeadlineSlack { slack: 1.0 },
        ] {
            let controlled = ControlledFleetSimulator::new(&fleet, &control)
                .with_dispatcher(policy)
                .with_admission(admission)
                .simulate(&scenario)
                .expect("controlled run succeeds");
            let plain = FleetSimulator::new(&fleet)
                .with_dispatcher(policy)
                .with_admission(admission)
                .simulate(&scenario)
                .expect("plain run succeeds");
            assert_eq!(
                *controlled.fleet(),
                plain,
                "static controller drifted from FleetSimulator under {policy:?}/{admission:?}"
            );
            assert_eq!(controlled.actions_applied(), 0);
            assert!(controlled.events().is_empty());
        }
    }
}

#[test]
fn facade_controller_matches_the_direct_simulator() {
    let scenario = ramp();
    let fleet = FleetConfig::homogeneous(&chip(), 2);
    let control = ControllerConfig::new(0.5, ControllerPolicy::Static);
    let via_facade = Experiment::new(scenario.design_workload())
        .dispatcher(DispatchPolicy::LeastLoaded)
        .controller(&fleet, &control, &scenario)
        .expect("facade run succeeds");
    let direct = ControlledFleetSimulator::new(&fleet, &control)
        .with_dispatcher(DispatchPolicy::LeastLoaded)
        .simulate(&scenario)
        .expect("direct run succeeds");
    assert_eq!(*via_facade.report(), direct);
    let plain = Experiment::new(scenario.design_workload())
        .dispatcher(DispatchPolicy::LeastLoaded)
        .fleet(&fleet, &scenario)
        .expect("plain facade run succeeds");
    assert_eq!(*via_facade.report().fleet(), *plain.report());
}

#[test]
fn autoscaler_is_repeat_identical_and_beats_static_through_the_peak() {
    // One chip against a ramp that peaks well past its capacity: the
    // static fleet drowns at midday, the autoscaler may grow to three
    // chips from a one-chip menu.
    let scenario = diurnal_ramp_trace(2, 4.0, 12.0, 0.4, 3.0, 7);
    let chip = chip();
    let fleet = FleetConfig::homogeneous(&chip, 1);
    let control = ControllerConfig::new(0.5, ControllerPolicy::autoscaler())
        .with_menu(vec![chip.clone()])
        .with_area_budget(3.0 * chip.area_mm2())
        .with_costs(0.01, 0.005, 0.005);
    let run = || {
        ControlledFleetSimulator::new(&fleet, &control)
            .with_dispatcher(DispatchPolicy::LeastLoaded)
            .simulate(&scenario)
            .expect("autoscaled run succeeds")
    };
    let auto = run();
    assert_eq!(auto, run(), "controlled runs must be repeat-identical");
    assert!(auto.actions_applied() > 0, "the autoscaler must act");

    let static_run = FleetSimulator::new(&fleet)
        .with_dispatcher(DispatchPolicy::LeastLoaded)
        .simulate(&scenario)
        .expect("static run succeeds");
    assert!(
        auto.fleet().deadline_miss_rate() < static_run.deadline_miss_rate(),
        "autoscaling must beat the static fleet: {} vs {}",
        auto.fleet().deadline_miss_rate(),
        static_run.deadline_miss_rate()
    );

    // The transient metrics see the same improvement: the worst
    // cadence-window miss rate shrinks or the fleet recovers sooner.
    let window = 0.5;
    let auto_peak = auto.peak_window(window).expect("windows exist").miss_rate;
    let n = (3.0f64 / window).ceil() as usize;
    let static_peak = (0..n)
        .map(|k| static_run.miss_rate_between(k as f64 * window, (k + 1) as f64 * window))
        .fold(0.0f64, f64::max);
    assert!(
        auto_peak <= static_peak,
        "autoscaling must not deepen the transient: {auto_peak} vs {static_peak}"
    );
}
