//! Property-style tests over the schedulers and execution model: for
//! seeded-random workload mixes, partitions and scheduler settings,
//! schedules are complete, dependence-legal and memory-bounded.
//!
//! The build environment cannot fetch `proptest`, so cases are generated
//! deterministically from the same SplitMix64 PRNG the DSE uses — every
//! run exercises the identical case set, which also makes failures
//! trivially reproducible.

use herald::prelude::*;
use herald_core::rng::SplitMix64;
use herald_core::task::TaskGraph;
use herald_models::zoo;
use herald_workloads::MultiDnnWorkload;
use std::collections::HashMap;

const CASES: usize = 24;

/// Small random multi-DNN workloads mixed from the cheaper zoo members.
fn gen_workload(rng: &mut SplitMix64) -> MultiDnnWorkload {
    let mn1 = rng.gen_range(1, 3);
    let mn2 = rng.gen_range(1, 3);
    let gnmt = rng.gen_range(0, 2);
    let mut w = MultiDnnWorkload::new("prop")
        .with_model(zoo::mobilenet_v1(), mn1)
        .with_model(zoo::mobilenet_v2(), mn2);
    if gnmt > 0 {
        w = w.with_model(zoo::gnmt(), gnmt);
    }
    w
}

/// Random legal 2-way partitions of the edge budget.
fn gen_partition(rng: &mut SplitMix64) -> Partition {
    let pe_eighths = rng.gen_range(1, 8) as u32;
    let bw_quarters = rng.gen_range(1, 4) as u32;
    let pes = 1024 * pe_eighths / 8;
    let bw = 16.0 * f64::from(bw_quarters) / 4.0;
    Partition::new(vec![pes, 1024 - pes], vec![bw, 16.0 - bw]).expect("legal partition")
}

fn gen_scheduler_config(rng: &mut SplitMix64) -> SchedulerConfig {
    let metric = [Metric::Edp, Metric::Latency, Metric::Energy][rng.gen_range(0, 3)];
    let ordering = [OrderingPolicy::BreadthFirst, OrderingPolicy::DepthFirst][rng.gen_range(0, 2)];
    // Uniform in [1.05, 3.0).
    let lbf = 1.05 + (rng.gen_range(0, 1_000_000) as f64 / 1_000_000.0) * 1.95;
    SchedulerConfig {
        metric,
        ordering,
        load_balance_factor: lbf,
        lookahead: rng.gen_range(0, 16),
        post_process: rng.gen_range(0, 2) == 1,
        // Exercise fused tile groups too: legality must hold at any
        // granularity, not just the layer-placement default.
        fusion: rng.gen_range(1, 5),
    }
}

/// Checks the two hard invariants of a report against its graph:
/// (1) every producer finishes before its consumer starts,
/// (2) no sub-accelerator runs two layers at once.
fn assert_report_legal(graph: &TaskGraph, report: &ExecutionReport) {
    let mut finish: HashMap<_, f64> = HashMap::new();
    for e in report.entries() {
        finish.insert(e.task, e.finish_s);
    }
    for e in report.entries() {
        for d in graph.deps(e.task) {
            assert!(
                finish[d] <= e.start_s + 1e-9,
                "{d} finishes after {} starts",
                e.task
            );
        }
    }
    let ways = report.per_acc().len();
    for a in 0..ways {
        let mut on_acc: Vec<_> = report.entries().iter().filter(|e| e.acc == a).collect();
        on_acc.sort_by(|x, y| x.start_s.total_cmp(&y.start_s));
        for pair in on_acc.windows(2) {
            assert!(
                pair[1].start_s >= pair[0].finish_s - 1e-9,
                "overlap on acc{a}"
            );
        }
    }
}

/// Herald schedules are complete, dependence-legal, serialized per
/// sub-accelerator and within the memory budget — for any workload,
/// partition and scheduler configuration.
#[test]
fn herald_schedules_are_legal() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0001);
    for case in 0..CASES {
        let workload = gen_workload(&mut rng);
        let partition = gen_partition(&mut rng);
        let cfg = gen_scheduler_config(&mut rng);
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let cost = CostModel::default();
        let report = HeraldScheduler::new(cfg)
            .schedule_and_simulate(&graph, &acc, &cost)
            .expect("herald schedules are legal");
        assert_eq!(report.entries().len(), graph.len(), "case {case}: {cfg:?}");
        assert_report_legal(&graph, &report);
        assert!(report.peak_memory_bytes() <= acc.global_buffer_bytes());
    }
}

/// The greedy baseline is likewise always simulatable.
#[test]
fn greedy_schedules_are_legal() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0002);
    for case in 0..CASES {
        let workload = gen_workload(&mut rng);
        let partition = gen_partition(&mut rng);
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let cost = CostModel::default();
        let report = GreedyScheduler::default()
            .schedule_and_simulate(&graph, &acc, &cost)
            .expect("greedy schedules are legal");
        assert_eq!(report.entries().len(), graph.len(), "case {case}");
        assert_report_legal(&graph, &report);
    }
}

/// Identical schedules replayed twice give identical reports (simulator
/// determinism).
#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0003);
    for _ in 0..CASES {
        let workload = gen_workload(&mut rng);
        let partition = gen_partition(&mut rng);
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let cost = CostModel::default();
        let schedule = HeraldScheduler::default()
            .schedule(&graph, &acc, &cost)
            .unwrap();
        let sim = ScheduleSimulator::new(&graph, &acc, &cost);
        let a = sim.simulate(&schedule).expect("legal");
        let b = sim.simulate(&schedule).expect("legal");
        assert_eq!(a, b);
    }
}

/// Makespan dominates every sub-accelerator's busy time, and total
/// energy equals the sum over entries.
#[test]
fn report_accounting_is_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0004);
    for _ in 0..CASES {
        let workload = gen_workload(&mut rng);
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc =
            AcceleratorConfig::maelstrom(res, Partition::even(2, res.pes, res.bandwidth_gbps))
                .expect("even partition");
        let cost = CostModel::default();
        let report = HeraldScheduler::default()
            .schedule_and_simulate(&graph, &acc, &cost)
            .expect("legal");
        for (i, a) in report.per_acc().iter().enumerate() {
            assert!(a.busy_s <= report.total_latency_s() + 1e-12);
            assert!(report.acc_utilization(i) <= 1.0 + 1e-9);
        }
        let entry_sum: f64 = report.entries().iter().map(|e| e.energy_j).sum();
        assert!((entry_sum - report.total_energy_j()).abs() < 1e-9 * entry_sum.max(1.0));
    }
}

/// Streaming scenarios obey the same hard invariants across frames: no
/// sub-accelerator ever runs two layers at once (checked on the global
/// busy-span timeline), memory stays within the global buffer, every
/// frame's latency is non-negative, and the whole simulation is
/// deterministic.
#[test]
fn streaming_scenarios_are_legal_and_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0005);
    for case in 0..8 {
        let partition = gen_partition(&mut rng);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let models = [zoo::mobilenet_v1, zoo::mobilenet_v2, zoo::gnmt];
        let n_streams = rng.gen_range(1, 4);
        let mut scenario = Scenario::new(format!("prop-{case}"), 0.05);
        for s in 0..n_streams {
            let workload =
                herald::workloads::single_model(models[rng.gen_range(0, models.len())](), 1);
            let fps = rng.gen_range(20, 200) as f64;
            let mut spec = StreamSpec::periodic(format!("s{s}"), workload, fps)
                .with_deadline(rng.gen_range(1, 100) as f64 / 1000.0);
            if rng.gen_range(0, 2) == 1 {
                let other =
                    herald::workloads::single_model(models[rng.gen_range(0, models.len())](), 1);
                spec = spec.swap_at(0.025, other);
            }
            scenario = scenario.stream(spec);
        }
        let run = || {
            Experiment::new(scenario.design_workload())
                .on_accelerator(acc.clone())
                .scenario(&scenario)
                .expect("streaming succeeds")
        };
        let outcome = run();
        let report = outcome.report();
        assert!(!report.frames().is_empty(), "case {case}");
        assert!(report.peak_memory_bytes() <= acc.global_buffer_bytes());
        for f in report.frames() {
            assert!(f.latency_s >= 0.0);
            assert!(f.finish_s >= f.arrival_s);
        }
        // Per-accelerator busy spans never overlap, across all frames.
        let ways = report.per_acc().len();
        for a in 0..ways {
            let mut spans: Vec<(f64, f64)> = report
                .busy_spans()
                .iter()
                .filter(|s| s.acc == a)
                .map(|s| (s.start_s, s.finish_s))
                .collect();
            spans.sort_by(|x, y| x.0.total_cmp(&y.0));
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1 - 1e-9,
                    "case {case}: overlap on acc{a}"
                );
            }
        }
        assert_eq!(outcome, run(), "case {case}: nondeterministic");
    }
}
