//! Property-based tests over the schedulers and execution model: for
//! random workload mixes, partitions and scheduler settings, schedules are
//! complete, dependence-legal and memory-bounded.

use herald::prelude::*;
use herald_arch::{AcceleratorConfig, Partition};
use herald_core::task::TaskGraph;
use herald_models::zoo;
use herald_workloads::MultiDnnWorkload;
use proptest::prelude::*;
use std::collections::HashMap;

/// Small random multi-DNN workloads mixed from the cheaper zoo members.
fn arb_workload() -> impl Strategy<Value = MultiDnnWorkload> {
    (1usize..=2, 1usize..=2, 0usize..=1).prop_map(|(mn1, mn2, gnmt)| {
        let mut w = MultiDnnWorkload::new("prop")
            .with_model(zoo::mobilenet_v1(), mn1)
            .with_model(zoo::mobilenet_v2(), mn2);
        if gnmt > 0 {
            w = w.with_model(zoo::gnmt(), gnmt);
        }
        w
    })
}

/// Random legal 2-way partitions of the edge budget.
fn arb_partition() -> impl Strategy<Value = Partition> {
    (1u32..=7, 1u32..=3).prop_map(|(pe_eighths, bw_quarters)| {
        let pes = 1024 * pe_eighths / 8;
        let bw = 16.0 * f64::from(bw_quarters) / 4.0;
        Partition::new(vec![pes, 1024 - pes], vec![bw, 16.0 - bw]).expect("legal partition")
    })
}

fn arb_scheduler_config() -> impl Strategy<Value = SchedulerConfig> {
    (
        prop_oneof![Just(Metric::Edp), Just(Metric::Latency), Just(Metric::Energy)],
        prop_oneof![Just(OrderingPolicy::BreadthFirst), Just(OrderingPolicy::DepthFirst)],
        1.05f64..3.0,
        0usize..16,
        any::<bool>(),
    )
        .prop_map(|(metric, ordering, lbf, lookahead, post)| SchedulerConfig {
            metric,
            ordering,
            load_balance_factor: lbf,
            lookahead,
            post_process: post,
        })
}

/// Checks the two hard invariants of a report against its graph:
/// (1) every producer finishes before its consumer starts,
/// (2) no sub-accelerator runs two layers at once.
fn assert_report_legal(graph: &TaskGraph, report: &herald_core::exec::ExecutionReport) {
    let mut finish: HashMap<_, f64> = HashMap::new();
    for e in report.entries() {
        finish.insert(e.task, e.finish_s);
    }
    for e in report.entries() {
        for d in graph.deps(e.task) {
            assert!(
                finish[d] <= e.start_s + 1e-9,
                "{d} finishes after {} starts",
                e.task
            );
        }
    }
    let ways = report.per_acc().len();
    for a in 0..ways {
        let mut on_acc: Vec<_> = report
            .entries()
            .iter()
            .filter(|e| e.acc == a)
            .collect();
        on_acc.sort_by(|x, y| x.start_s.partial_cmp(&y.start_s).expect("finite"));
        for pair in on_acc.windows(2) {
            assert!(
                pair[1].start_s >= pair[0].finish_s - 1e-9,
                "overlap on acc{a}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Herald schedules are complete, dependence-legal, serialized per
    /// sub-accelerator and within the memory budget — for any workload,
    /// partition and scheduler configuration.
    #[test]
    fn herald_schedules_are_legal(
        workload in arb_workload(),
        partition in arb_partition(),
        cfg in arb_scheduler_config(),
    ) {
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let cost = CostModel::default();
        let report = HeraldScheduler::new(cfg)
            .schedule_and_simulate(&graph, &acc, &cost)
            .expect("herald schedules are legal");
        prop_assert_eq!(report.entries().len(), graph.len());
        assert_report_legal(&graph, &report);
        prop_assert!(report.peak_memory_bytes() <= acc.global_buffer_bytes());
    }

    /// The greedy baseline is likewise always simulatable.
    #[test]
    fn greedy_schedules_are_legal(workload in arb_workload(), partition in arb_partition()) {
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let cost = CostModel::default();
        let report = GreedyScheduler::default()
            .schedule_and_simulate(&graph, &acc, &cost)
            .expect("greedy schedules are legal");
        prop_assert_eq!(report.entries().len(), graph.len());
        assert_report_legal(&graph, &report);
    }

    /// Total energy is assignment-driven only: identical schedules replayed
    /// twice give identical reports (simulator determinism).
    #[test]
    fn simulation_is_deterministic(workload in arb_workload(), partition in arb_partition()) {
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(res, partition).expect("legal partition");
        let cost = CostModel::default();
        let schedule = HeraldScheduler::default().schedule(&graph, &acc, &cost);
        let sim = herald_core::exec::ScheduleSimulator::new(&graph, &acc, &cost);
        let a = sim.simulate(&schedule).expect("legal");
        let b = sim.simulate(&schedule).expect("legal");
        prop_assert_eq!(a, b);
    }

    /// Makespan dominates every sub-accelerator's busy time, and total
    /// energy equals the sum over entries.
    #[test]
    fn report_accounting_is_consistent(workload in arb_workload()) {
        let graph = TaskGraph::new(&workload);
        let res = AcceleratorClass::Edge.resources();
        let acc = AcceleratorConfig::maelstrom(
            res,
            Partition::even(2, res.pes, res.bandwidth_gbps),
        ).expect("even partition");
        let cost = CostModel::default();
        let report = HeraldScheduler::default()
            .schedule_and_simulate(&graph, &acc, &cost)
            .expect("legal");
        for (i, a) in report.per_acc().iter().enumerate() {
            prop_assert!(a.busy_s <= report.total_latency_s() + 1e-12);
            prop_assert!(report.acc_utilization(i) <= 1.0 + 1e-9);
        }
        let entry_sum: f64 = report.entries().iter().map(|e| e.energy_j).sum();
        prop_assert!((entry_sum - report.total_energy_j()).abs() < 1e-9 * entry_sum.max(1.0));
    }
}
