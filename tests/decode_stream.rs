//! Pins on the autoregressive decoder stream: a chained session is
//! strictly serial — token `k+1` is admitted exactly at token `k`'s
//! completion plus the sampling gap, never before — and under a fixed
//! schedule the per-token cost is monotone in the KV-cache length.

use herald::prelude::*;
use herald_workloads::{transformer_decode_stream, DECODE_KV_BUCKET};

fn edge_maelstrom() -> AcceleratorConfig {
    AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap()
}

fn run_decode(scenario: &Scenario) -> StreamOutcome {
    Experiment::new(scenario.design_workload())
        .on_accelerator(edge_maelstrom())
        .fast()
        .scenario(scenario)
        .unwrap()
}

/// Frames of one stream ordered by token index.
fn tokens_of(report: &StreamReport, stream: usize) -> Vec<FrameRecord> {
    let mut tokens: Vec<FrameRecord> = report
        .frames()
        .iter()
        .filter(|f| f.stream == stream)
        .cloned()
        .collect();
    tokens.sort_by_key(|f| f.seq);
    tokens
}

#[test]
fn tokens_are_never_admitted_before_the_previous_completes() {
    let (sessions, tokens, gap_s) = (3, 40, 0.002);
    let scenario = transformer_decode_stream(sessions, tokens, gap_s, 0.05, 13);
    let outcome = run_decode(&scenario);
    let report = outcome.report();
    assert_eq!(report.frames().len(), sessions * tokens);
    for stream in 0..sessions {
        let toks = tokens_of(report, stream);
        assert_eq!(toks.len(), tokens, "stream {stream} must serve every token");
        for (k, pair) in toks.windows(2).enumerate() {
            assert!(
                pair[1].arrival_s > pair[0].finish_s,
                "stream {stream}: token {} admitted before token {k} completed",
                k + 1
            );
            assert_eq!(
                pair[1].arrival_s.to_bits(),
                (pair[0].finish_s + gap_s).to_bits(),
                "stream {stream}: token {} must arrive exactly one gap after token {k}",
                k + 1
            );
        }
    }
}

#[test]
fn per_token_latency_is_monotone_in_kv_length_under_a_fixed_schedule() {
    // Three KV buckets: the score/context GEMMs grow with the cache, so
    // under a fixed schedule per bucket the mean token latency must be
    // non-decreasing — and strictly increasing bucket to bucket.
    let tokens = 3 * DECODE_KV_BUCKET;
    let scenario = transformer_decode_stream(1, tokens, 0.002, 0.05, 13);
    let outcome = run_decode(&scenario);
    let report = outcome.report();
    let toks = tokens_of(report, 0);
    let buckets = tokens / DECODE_KV_BUCKET;
    let mut mean = vec![0.0f64; buckets];
    for f in &toks {
        mean[f.seq / DECODE_KV_BUCKET] += f.latency_s / DECODE_KV_BUCKET as f64;
    }
    for pair in mean.windows(2) {
        assert!(
            pair[1] > pair[0],
            "a longer KV cache must cost more per token: {mean:?}"
        );
    }
    // Within a bucket the schedule is fixed and the scheduler is served
    // from the memo: one invocation per bucket.
    assert_eq!(report.scheduler_invocations(), buckets);
}

#[test]
fn decode_streams_are_deterministic_across_policies() {
    // The chained engine path must agree with the schedule-every-arrival
    // baseline to the last bit, exactly like trace-driven streams.
    let scenario = transformer_decode_stream(2, 48, 0.003, 0.05, 29);
    let run = |policy: ReschedulePolicy| {
        Experiment::new(scenario.design_workload())
            .on_accelerator(edge_maelstrom())
            .fast()
            .reschedule_policy(policy)
            .scenario(&scenario)
            .unwrap()
    };
    let inc = run(ReschedulePolicy::Incremental);
    let full = run(ReschedulePolicy::FullReschedule);
    assert_eq!(inc.report().frames(), full.report().frames());
    assert_eq!(inc.report().busy_spans(), full.report().busy_spans());
    assert_eq!(
        inc.report().makespan_s().to_bits(),
        full.report().makespan_s().to_bits()
    );
    assert!(inc.report().scheduler_invocations() < full.report().scheduler_invocations());
}
