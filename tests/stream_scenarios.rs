//! End-to-end tests of the event-driven streaming core through the
//! public facade: single-frame equivalence with the one-shot path,
//! determinism, swap handling and scenario validation.

use herald::prelude::*;

fn tiny_workload() -> MultiDnnWorkload {
    herald::workloads::single_model(herald::models::zoo::mobilenet_v1(), 1)
}

fn edge_fda() -> AcceleratorConfig {
    AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources())
}

#[test]
fn one_shot_scenario_is_bit_identical_to_single_frame_run() {
    // The one-shot `Experiment::run` and a one-frame scenario share the
    // event core and the scheduler configuration, so the frame's latency
    // and energy must equal the execution report's to the last bit.
    let workload = tiny_workload();
    let run = Experiment::new(workload.clone())
        .on_accelerator(edge_fda())
        .run()
        .unwrap();
    let scenario =
        Scenario::new("one-shot", 1.0).stream(StreamSpec::one_shot("frame", workload.clone()));
    let stream = Experiment::new(workload)
        .on_accelerator(edge_fda())
        .scenario(&scenario)
        .unwrap();
    let frames = stream.report().frames();
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].latency_s, run.latency_s());
    assert_eq!(frames[0].energy_j, run.energy_j());
    assert_eq!(
        stream.report().peak_memory_bytes(),
        run.report().peak_memory_bytes()
    );
    assert_eq!(
        stream.report().per_acc()[0].busy_s,
        run.report().per_acc()[0].busy_s
    );
}

#[test]
fn scenarios_are_deterministic_across_runs() {
    // Same scenario (periodic + seeded Poisson + swap) twice through the
    // facade: identical StreamReports, field for field.
    let scenario = Scenario::new("determinism", 0.1)
        .stream(
            StreamSpec::periodic("cam", tiny_workload(), 50.0)
                .with_deadline(0.05)
                .swap_at(
                    0.05,
                    herald::workloads::single_model(herald::models::zoo::mobilenet_v2(), 1),
                ),
        )
        .stream(StreamSpec::poisson(
            "burst",
            herald::workloads::single_model(herald::models::zoo::gnmt(), 1),
            20.0,
            42,
        ));
    let run = || {
        Experiment::new(scenario.design_workload())
            .on_accelerator(edge_fda())
            .scenario(&scenario)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

#[test]
fn search_mode_streams_on_the_dse_winner() {
    let scenario = herald::workloads::arvr_a_stream(0.05, 0.4);
    let outcome = Experiment::new(scenario.design_workload())
        .on(AcceleratorClass::Edge)
        .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .fast()
        .scenario(&scenario)
        .unwrap();
    assert!(outcome.accelerator.starts_with("HDA"));
    assert_eq!(outcome.scenario, "AR/VR-A-stream");
    let report = outcome.report();
    // Every stream fires at least its t = 0 frame.
    assert!(report.frames().len() >= 3);
    assert!(report.throughput_fps() > 0.0);
    assert_eq!(report.stream_names().len(), 3);
    // Incremental online scheduling: one compile per stream (no swaps),
    // later arrivals of a stream hit its schedule cache.
    assert_eq!(report.scheduler_invocations(), report.stream_names().len());
    assert_eq!(
        report.schedule_cache_hits() + report.scheduler_invocations(),
        report.frames().len()
    );
    assert!(report.placement_evaluations() > 0);
    let json = outcome.to_json().unwrap();
    assert!(json.contains("\"scenario\""));
    assert!(json.contains("frames"));
}

#[test]
fn swap_transient_is_observable_from_one_simulation() {
    // A stream that swaps from a light to a heavy workload mid-run: the
    // report carries both workload names and the windowed miss-rate view
    // around the swap, all from a single continuous simulation.
    // On NVDLA this cost model makes depthwise-heavy MobileNetV1 far
    // more expensive than ResNet50, so the stream swaps ResNet50 ->
    // MobileNetV1.
    let heavy = tiny_workload();
    let light = herald::workloads::single_model(herald::models::zoo::resnet50(), 1);
    // Calibrate the stream off the light workload's measured service
    // time: sustainable rate and a deadline the light phase always meets
    // but the much heavier frames cannot.
    let lat_light = Experiment::new(light.clone())
        .on_accelerator(edge_fda())
        .run()
        .unwrap()
        .latency_s();
    let period = 1.25 * lat_light;
    let swap_at = 4.0 * period;
    let scenario = Scenario::new("transient", 8.0 * period).stream(
        StreamSpec::periodic("s", light, 1.0 / period)
            .with_deadline(2.0 * lat_light)
            .swap_at(swap_at, heavy),
    );
    let outcome = Experiment::new(scenario.design_workload())
        .on_accelerator(edge_fda())
        .scenario(&scenario)
        .unwrap();
    let report = outcome.report();
    assert_eq!(report.swaps().len(), 1);
    let names: Vec<&str> = report.frames().iter().map(|f| &*f.workload).collect();
    assert!(names.contains(&"Resnet50-b1"));
    assert!(names.contains(&"MobileNetV1-b1"));
    // The heavy phase misses more than the light phase.
    let pre = report.miss_rate_between(0.0, swap_at);
    let post = report.miss_rate_between(swap_at, report.makespan_s());
    assert!(
        post > pre,
        "expected a miss transient after the swap: pre {pre}, post {post}"
    );
}

#[test]
fn degenerate_scenarios_surface_typed_errors() {
    let empty = Scenario::new("empty", 1.0);
    let err = Experiment::new(tiny_workload())
        .on_accelerator(edge_fda())
        .scenario(&empty)
        .unwrap_err();
    assert!(matches!(err, HeraldError::Scenario { .. }));
    // Search mode without a target budget is the familiar resources error.
    let ok_scenario = Scenario::new("ok", 0.1).stream(StreamSpec::one_shot("s", tiny_workload()));
    let err = Experiment::new(tiny_workload())
        .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
        .scenario(&ok_scenario)
        .unwrap_err();
    assert!(matches!(err, HeraldError::InvalidResources { .. }));
}

#[test]
fn deadline_accounting_matches_frame_records() {
    let scenario = Scenario::new("deadlines", 0.05)
        .stream(StreamSpec::periodic("s", tiny_workload(), 100.0).with_deadline(0.004));
    let outcome = Experiment::new(scenario.design_workload())
        .on_accelerator(edge_fda())
        .scenario(&scenario)
        .unwrap();
    let report = outcome.report();
    let misses = report.frames().iter().filter(|f| f.missed).count();
    let carrying = report
        .frames()
        .iter()
        .filter(|f| f.deadline_s.is_some())
        .count();
    assert!(carrying > 0);
    assert!((report.deadline_miss_rate() - misses as f64 / carrying as f64).abs() < 1e-12);
    for f in report.frames() {
        assert_eq!(f.missed, f.latency_s > f.deadline_s.unwrap());
        assert!((f.latency_s - (f.finish_s - f.arrival_s)).abs() < 1e-15);
    }
}
