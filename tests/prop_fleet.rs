//! Property-style tests over the fleet serving layer: for seeded-random
//! scenarios, fleets and dispatch policies, frame conservation holds
//! (every generated frame is dispatched to exactly one chip and appears
//! in exactly one per-chip report), merged fleet totals equal the sum of
//! per-chip totals, and the merged report is bit-identical across
//! repeated runs regardless of how the per-chip workers interleave.
//!
//! The build environment cannot fetch `proptest`, so cases are generated
//! deterministically from the same SplitMix64 PRNG the DSE uses — every
//! run exercises the identical case set, which also makes failures
//! trivially reproducible.

use herald::prelude::*;
use herald_core::rng::SplitMix64;
use herald_workloads::{seeded, single_model, Scenario};
use std::collections::HashSet;

const CASES: usize = 6;

/// Small random multi-tenant scenarios over the cheaper zoo members:
/// a seeded Poisson pair (with a mid-run swap), a periodic pair, or a
/// fleet mix.
fn gen_scenario(rng: &mut SplitMix64, case: usize) -> Scenario {
    let seed = rng.next_u64();
    match case % 3 {
        0 => herald::workloads::poisson_mix_stream(
            0.5 + rng.gen_range(0, 3) as f64 * 0.25,
            0.15,
            seed,
        ),
        1 => {
            let fps = 80.0 + rng.gen_range(0, 5) as f64 * 20.0;
            Scenario::new("periodic-pair", 0.08)
                .stream(
                    StreamSpec::periodic(
                        "a",
                        single_model(herald::models::zoo::mobilenet_v1(), 1),
                        fps,
                    )
                    .with_deadline(1.5 / fps),
                )
                .stream(
                    StreamSpec::poisson(
                        "b",
                        single_model(herald::models::zoo::mobilenet_v2(), 1),
                        fps / 2.0,
                        seeded::derive_seed(seed, 1),
                    )
                    .with_deadline(3.0 / fps),
                )
        }
        _ => herald::workloads::fleet_mix_stream(
            2 + rng.gen_range(0, 3),
            60.0 + rng.gen_range(0, 4) as f64 * 30.0,
            0.05,
            0.08,
            seed,
        ),
    }
}

/// Random 1-3 chip fleets, homogeneous or mixed-style.
fn gen_fleet(rng: &mut SplitMix64) -> FleetConfig {
    let res = AcceleratorClass::Edge.resources();
    let styles = [
        DataflowStyle::Nvdla,
        DataflowStyle::ShiDianNao,
        DataflowStyle::Eyeriss,
    ];
    let chips = 1 + rng.gen_range(0, 3);
    let mut fleet = FleetConfig::new();
    let homogeneous = rng.gen_range(0, 2) == 0;
    let base = styles[rng.gen_range(0, styles.len())];
    for i in 0..chips {
        let style = if homogeneous {
            base
        } else {
            styles[(rng.gen_range(0, styles.len()) + i) % styles.len()]
        };
        fleet = fleet.chip(AcceleratorConfig::fda(style, res));
    }
    fleet
}

/// The globally generated frames of a scenario, as (stream, seq) ->
/// arrival time — recomputed independently from the shared samplers and
/// sorted in the dispatcher's global event order (time, then stream).
fn generated_frames(scenario: &Scenario) -> Vec<(usize, usize, f64)> {
    let mut frames = Vec::new();
    for (si, stream) in scenario.streams().iter().enumerate() {
        for (seq, t) in seeded::arrival_times(stream.arrival(), scenario.horizon_s())
            .into_iter()
            .enumerate()
        {
            frames.push((si, seq, t));
        }
    }
    frames.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    frames
}

fn simulate(
    fleet: &FleetConfig,
    scenario: &Scenario,
    policy: DispatchPolicy,
) -> herald::FleetOutcome {
    Experiment::new(scenario.design_workload())
        .fast()
        .dispatcher(policy)
        .fleet(fleet, scenario)
        .expect("fleet simulation succeeds")
}

#[test]
fn every_generated_frame_is_dispatched_to_exactly_one_chip() {
    let mut rng = SplitMix64::seed_from_u64(0xF1EE7);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng, case);
        let fleet = gen_fleet(&mut rng);
        let expected = generated_frames(&scenario);
        for policy in DispatchPolicy::ALL {
            let outcome = simulate(&fleet, &scenario, policy);
            let report = outcome.report();

            // Exactly one routing decision per generated frame, with
            // matching arrival times and no duplicates.
            assert_eq!(report.assignments().len(), expected.len());
            let mut seen = HashSet::new();
            for (assignment, (si, seq, t)) in report.assignments().iter().zip(&expected) {
                assert_eq!((assignment.stream, assignment.seq), (*si, *seq));
                assert_eq!(assignment.arrival_s.to_bits(), t.to_bits());
                assert!(assignment.chip < fleet.len());
                assert!(
                    seen.insert((assignment.stream, assignment.seq)),
                    "frame ({}, {}) dispatched twice",
                    assignment.stream,
                    assignment.seq
                );
            }

            // Every frame appears in exactly one per-chip report: chip
            // frame counts per stream match the assignment partition,
            // and each chip's replayed arrival times are exactly the
            // routed slice.
            for (c, chip_report) in report.per_chip().iter().enumerate() {
                for (si, _) in scenario.streams().iter().enumerate() {
                    let routed: Vec<u64> = report
                        .assignments()
                        .iter()
                        .filter(|a| a.chip == c && a.stream == si)
                        .map(|a| a.arrival_s.to_bits())
                        .collect();
                    let mut replayed: Vec<u64> = chip_report
                        .frames()
                        .iter()
                        .filter(|f| f.stream == si)
                        .map(|f| f.arrival_s.to_bits())
                        .collect();
                    replayed.sort_unstable();
                    let mut routed_sorted = routed.clone();
                    routed_sorted.sort_unstable();
                    assert_eq!(
                        routed_sorted, replayed,
                        "case {case} {policy:?}: chip {c} stream {si} frame mismatch"
                    );
                }
            }
            assert_eq!(report.frames_total(), expected.len());
            assert!(report.dropped().is_empty());
        }
    }
}

#[test]
fn merged_totals_equal_the_sum_of_per_chip_totals() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng, case);
        let fleet = gen_fleet(&mut rng);
        let policy = DispatchPolicy::ALL[case % DispatchPolicy::ALL.len()];
        let outcome = simulate(&fleet, &scenario, policy);
        let report = outcome.report();

        let frame_sum: usize = report.per_chip().iter().map(|r| r.frames().len()).sum();
        assert_eq!(report.frames_total(), frame_sum);

        let energy_sum: f64 = report.per_chip().iter().map(|r| r.total_energy_j()).sum();
        assert_eq!(report.total_energy_j().to_bits(), energy_sum.to_bits());

        let makespan_max = report
            .per_chip()
            .iter()
            .map(|r| r.makespan_s())
            .fold(scenario.horizon_s(), f64::max);
        assert_eq!(report.makespan_s().to_bits(), makespan_max.to_bits());

        // The merged miss rate counts exactly the per-chip missed /
        // deadline-carrying frames.
        let (mut missed, mut with_deadline) = (0usize, 0usize);
        for chip in report.per_chip() {
            for f in chip.frames() {
                if f.deadline_s.is_some() {
                    with_deadline += 1;
                    if f.missed {
                        missed += 1;
                    }
                }
            }
        }
        let expected_rate = if with_deadline == 0 {
            0.0
        } else {
            missed as f64 / with_deadline as f64
        };
        assert_eq!(
            report.deadline_miss_rate().to_bits(),
            expected_rate.to_bits()
        );

        // Per-stream merged stats partition the same frames.
        let stream_frame_sum: usize = report.stream_stats().iter().map(|s| s.frames).sum();
        assert_eq!(stream_frame_sum, frame_sum);
    }
}

#[test]
fn fleet_reports_are_bit_identical_across_repeated_runs() {
    // One chip worker per chip runs on its own thread; the merged
    // report must not depend on how those workers interleave. Three
    // repeats per case gives the scheduler room to interleave
    // differently while staying cheap.
    let mut rng = SplitMix64::seed_from_u64(0xD15EA5E);
    for case in 0..CASES {
        let scenario = gen_scenario(&mut rng, case);
        let fleet = gen_fleet(&mut rng);
        let policy = DispatchPolicy::ALL[case % DispatchPolicy::ALL.len()];
        let first = simulate(&fleet, &scenario, policy);
        for _ in 0..2 {
            let again = simulate(&fleet, &scenario, policy);
            assert_eq!(
                first.report(),
                again.report(),
                "case {case} {policy:?}: fleet report must be reproducible"
            );
            assert_eq!(first, again);
        }
    }
}
