//! The online-rescheduling equivalence suite: the incremental streaming
//! path (per-stream dirty-tracked schedule memos, shared `EvalContext`)
//! must produce **bit-identical** simulations to the full-reschedule
//! baseline that re-runs the scheduler at every frame arrival — on the
//! rated AR/VR trace, the Fig. 13 workload-change trace, and a seeded
//! Poisson scenario — while doing measurably less scheduling work.

use herald::prelude::*;

fn edge_maelstrom() -> AcceleratorConfig {
    AcceleratorConfig::maelstrom(
        AcceleratorClass::Edge.resources(),
        Partition::even(2, 1024, 16.0),
    )
    .unwrap()
}

/// Streams `scenario` on a fixed accelerator under both policies and
/// asserts the timelines agree to the last bit, the counters prove the
/// incremental path did less work, and returns both reports.
fn assert_equivalent(scenario: &Scenario) -> (StreamOutcome, StreamOutcome) {
    let run = |policy: ReschedulePolicy| {
        Experiment::new(scenario.design_workload())
            .on_accelerator(edge_maelstrom())
            .fast()
            .reschedule_policy(policy)
            .scenario(scenario)
            .unwrap()
    };
    let incremental = run(ReschedulePolicy::Incremental);
    let full = run(ReschedulePolicy::FullReschedule);
    let (a, b) = (incremental.report(), full.report());

    // Bit-identical simulation outcomes (exact f64 equality throughout).
    assert_eq!(a.frames(), b.frames(), "{}: frame records", scenario.name());
    assert_eq!(a.swaps(), b.swaps(), "{}: swap records", scenario.name());
    assert_eq!(
        a.busy_spans(),
        b.busy_spans(),
        "{}: busy spans",
        scenario.name()
    );
    assert_eq!(
        a.per_acc(),
        b.per_acc(),
        "{}: per-acc summaries",
        scenario.name()
    );
    assert_eq!(
        a.energy(),
        b.energy(),
        "{}: energy breakdown",
        scenario.name()
    );
    assert_eq!(
        a.makespan_s(),
        b.makespan_s(),
        "{}: makespan",
        scenario.name()
    );
    assert_eq!(
        a.peak_memory_bytes(),
        b.peak_memory_bytes(),
        "{}: peak memory",
        scenario.name()
    );
    assert_eq!(a.events_processed(), b.events_processed());

    // The incremental path compiled strictly less often and evaluated
    // strictly fewer placements; the baseline never hit a cache.
    assert!(a.scheduler_invocations() < b.scheduler_invocations());
    assert!(a.placement_evaluations() < b.placement_evaluations());
    assert!(a.schedule_cache_hits() > 0);
    assert_eq!(b.schedule_cache_hits(), 0);
    (incremental, full)
}

#[test]
fn arvr_a_stream_is_bit_identical_incrementally() {
    // Rates 2/4/4 fps over 1.2 s: ~12 arrivals across three streams, no
    // swaps — the steady-state serving regime.
    let scenario = herald::workloads::arvr_a_stream(1.0, 1.2);
    let (incremental, full) = assert_equivalent(&scenario);
    // One compile per stream; every later arrival reuses it.
    assert_eq!(incremental.report().scheduler_invocations(), 3);
    assert_eq!(
        full.report().scheduler_invocations(),
        full.report().frames().len()
    );
}

#[test]
fn workload_change_trace_is_bit_identical_incrementally() {
    // The Fig. 13 trace: full multi-DNN frames with a mid-run swap from
    // AR/VR-A to AR/VR-B — the swap must invalidate (only) the swapped
    // stream's memo in both the engine and the context.
    let scenario = herald::workloads::workload_change_trace(2.0, 0.6, 2.0);
    let (incremental, _) = assert_equivalent(&scenario);
    // Two workload versions on one stream: exactly two compiles.
    assert_eq!(incremental.report().scheduler_invocations(), 2);
    assert_eq!(incremental.report().swaps().len(), 1);
}

#[test]
fn seeded_poisson_scenario_is_bit_identical_incrementally() {
    // Memoryless arrivals plus a camera-stream swap, sampled from a
    // fixed seed: irregular event interleavings across two tenants.
    let scenario = herald::workloads::poisson_mix_stream(1.0, 0.5, 2024);
    let (incremental, _) = assert_equivalent(&scenario);
    // Three workload versions total: camera before/after its swap, plus
    // the analytics stream.
    assert_eq!(incremental.report().scheduler_invocations(), 3);
}

#[test]
fn shared_context_serves_repeat_scenarios_from_memo() {
    // Two identical `.scenario()` calls on one context: the second run's
    // compiles are all served from the context's schedule memo, and the
    // cost model learns nothing new — yet the outcomes are identical.
    let scenario = herald::workloads::arvr_a_stream(1.0, 1.2);
    let ctx = EvalContext::new();
    let run = || {
        Experiment::new(scenario.design_workload())
            .on_accelerator(edge_maelstrom())
            .fast()
            .with_context(ctx.clone())
            .scenario(&scenario)
            .unwrap()
    };
    let first = run();
    let runs_after_first = ctx.stats().scheduler_runs();
    let queries_after_first = ctx.cost_model().cached_queries();
    assert!(runs_after_first > 0);
    assert!(first.report().placement_evaluations() > 0);

    let second = run();
    // Identical simulation, zero fresh scheduling work: the second run
    // reports 0 compiles and 0 placement evaluations because every
    // scheduling decision was served from the context memo.
    assert_eq!(first.report().frames(), second.report().frames());
    assert_eq!(first.report().busy_spans(), second.report().busy_spans());
    assert_eq!(first.report().energy(), second.report().energy());
    assert_eq!(second.report().placement_evaluations(), 0);
    assert_eq!(second.report().scheduler_invocations(), 0);
    assert_eq!(
        second.report().schedule_cache_hits(),
        second.report().frames().len(),
        "every online decision of the warm run is a cache hit"
    );
    assert_eq!(
        ctx.stats().scheduler_runs(),
        runs_after_first,
        "second run must not re-run the placement core"
    );
    assert_eq!(ctx.cost_model().cached_queries(), queries_after_first);
}

#[test]
fn one_chip_fleet_is_bit_identical_to_direct_streaming() {
    // The fleet layer's correctness bar: a 1-chip fleet under *any*
    // dispatcher routes the entire trace to its only chip and must
    // reproduce the direct single-chip streaming run to the last bit —
    // same frames, spans, energy, counters, everything the report
    // carries. Covered on the steady-state AR/VR trace, the Fig. 13
    // workload-change trace and the seeded Poisson mix.
    let scenarios = [
        herald::workloads::arvr_a_stream(1.0, 1.2),
        herald::workloads::workload_change_trace(2.0, 0.6, 2.0),
        herald::workloads::poisson_mix_stream(1.0, 0.5, 2024),
    ];
    let chip = edge_maelstrom();
    let fleet = FleetConfig::homogeneous(&chip, 1);
    for scenario in &scenarios {
        let direct = Experiment::new(scenario.design_workload())
            .on_accelerator(chip.clone())
            .fast()
            .scenario(scenario)
            .unwrap();
        for policy in DispatchPolicy::ALL {
            let fleet_run = Experiment::new(scenario.design_workload())
                .fast()
                .dispatcher(policy)
                .fleet(&fleet, scenario)
                .unwrap();
            let report = fleet_run.report();
            assert_eq!(report.chips(), 1);
            assert!(report.dropped().is_empty());
            assert_eq!(
                &report.per_chip()[0],
                direct.report(),
                "{}: 1-chip fleet under {policy:?} must equal the direct run",
                scenario.name()
            );
            // The merged fleet view agrees with the single-chip report.
            assert_eq!(report.frames_total(), direct.report().frames().len());
            assert_eq!(
                report.makespan_s().to_bits(),
                direct.report().makespan_s().to_bits()
            );
            assert_eq!(
                report.deadline_miss_rate().to_bits(),
                direct.report().deadline_miss_rate().to_bits()
            );
            assert_eq!(
                report.latency_percentile(0.95).to_bits(),
                direct.report().latency_percentile(0.95).to_bits()
            );
        }
    }
}

#[test]
fn context_reuse_spans_run_and_scenario_calls() {
    // `.run()` warms the context; the `.scenario()` on the same design
    // workload then starts from a hot cost model. The observable
    // contract: no new distinct cost queries are computed by the
    // streaming phase beyond what the one-shot run already evaluated.
    let scenario = herald::workloads::arvr_a_stream(1.0, 0.6);
    let workload = scenario.design_workload();
    let ctx = EvalContext::new();
    Experiment::new(workload.clone())
        .on_accelerator(edge_maelstrom())
        .fast()
        .with_context(ctx.clone())
        .run()
        .unwrap();
    let queries_after_run = ctx.cost_model().cached_queries();
    Experiment::new(workload)
        .on_accelerator(edge_maelstrom())
        .fast()
        .with_context(ctx.clone())
        .scenario(&scenario)
        .unwrap();
    assert_eq!(
        ctx.cost_model().cached_queries(),
        queries_after_run,
        "streaming the same layers must hit the shared cost memo"
    );
    assert!(ctx.cost_model().cache_hits() > 0);
}
