//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of the serde
//! ecosystem (see `shims/README.md`). Instead of serde's visitor-based
//! data model, this shim serializes through an owned [`Value`] tree:
//!
//! * [`Serialize`] converts a type into a [`Value`],
//! * [`Deserialize`] reconstructs a type from a [`Value`],
//! * `serde_json` (the sibling shim) renders/parses `Value` as JSON.
//!
//! The derive macros re-exported here (from the `serde_derive` shim)
//! mirror real serde's default representations: structs as JSON maps,
//! newtypes transparently, enums externally tagged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

// ---------------------------------------------------------------------------
// Value tree
// ---------------------------------------------------------------------------

/// A JSON-shaped value tree, the interchange format of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (JSON number without fraction/exponent).
    Int(i64),
    /// Non-negative integer (JSON number without fraction/exponent).
    UInt(u64),
    /// JSON number with fraction or exponent.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Mutable array contents, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer contents, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Object lookup by key; `None` if missing or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        out
    }

    /// Renders pretty JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, Some(2), 0);
        out
    }

    /// Parses JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first syntax error.
    pub fn parse_json(text: &str) -> Result<Value, DeError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Map(Vec::new());
        }
        let Value::Map(entries) = self else {
            panic!("cannot index non-object value with string key {key:?}");
        };
        if let Some(i) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[i].1;
        }
        entries.push((key.to_string(), Value::Null));
        &mut entries.last_mut().expect("just pushed").1
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Seq(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        match self {
            Value::Seq(v) => &mut v[i],
            other => panic!("cannot index {other:?} with {i}"),
        }
    }
}

fn write_json(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        // `{:?}` is Rust's shortest round-tripping representation and
        // always includes a fraction or exponent, so integers and floats
        // stay distinguishable in the output. JSON has no NaN/inf;
        // serialize non-finite values as `null` like real serde_json, so
        // the output always stays parseable.
        Value::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts — matches real
/// serde_json's default recursion limit, and turns hostile deeply-nested
/// input into an error instead of a stack overflow.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(DeError::custom(format!(
                "JSON nesting exceeds {MAX_PARSE_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(DeError::custom(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(DeError::custom(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(DeError::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    DeError::custom(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex).ok_or_else(|| {
                                DeError::custom(format!("bad \\u escape at byte {}", self.pos))
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError::custom(format!(
                                "bad escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError::custom("invalid UTF-8 in string".to_string()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(DeError::custom("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::custom("invalid number".to_string()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DeError::custom(format!("invalid number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Deserialization error: a message plus no further structure, like
/// `serde::de::Error::custom`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An arbitrary-message error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Type mismatch while deserializing `ty`.
    pub fn expected(what: &str, ty: &str) -> Self {
        Self::custom(format!("expected {what} while deserializing {ty}"))
    }

    /// A required map key was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self::custom(format!("missing field {field:?} for {ty}"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Self::custom(format!("unknown variant {tag:?} for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Serialization into the shim's [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use crate::DeError as Error;
    /// In real serde, `DeserializeOwned` is `for<'de> Deserialize<'de>`;
    /// the shim's [`crate::Deserialize`] is already owned.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------------

/// Support functions for the derive macros; not part of the public API
/// surface mirrored from real serde.
pub mod shim {
    use super::{DeError, Value};

    /// The entries of a map value.
    pub fn entries<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        match v {
            Value::Map(entries) => Ok(entries),
            _ => Err(DeError::expected("map", ty)),
        }
    }

    /// The elements of a sequence value.
    pub fn seq<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], DeError> {
        match v {
            Value::Seq(items) => Ok(items),
            _ => Err(DeError::expected("sequence", ty)),
        }
    }

    /// Looks up a struct field by name.
    pub fn field<'a>(
        entries: &'a [(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<&'a Value, DeError> {
        entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::missing_field(name, ty))
    }

    /// Looks up a struct field by name, returning `None` when absent —
    /// the `#[serde(default)]` path, where a missing field falls back
    /// to a caller-supplied default instead of erroring.
    pub fn opt_field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Indexes a tuple element.
    pub fn elem<'a>(items: &'a [Value], i: usize, ty: &str) -> Result<&'a Value, DeError> {
        items
            .get(i)
            .ok_or_else(|| DeError::custom(format!("missing tuple element {i} for {ty}")))
    }

    /// Extracts an externally tagged enum's `(tag, payload)`.
    pub fn tagged<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), DeError> {
        match v {
            Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            _ => Err(DeError::expected("single-key map (enum tag)", ty)),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive / std impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u)
                    .map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let u = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "usize"))?;
        usize::try_from(u).map_err(|_| DeError::custom(format!("{u} out of range for usize")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range")))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(i)
                    .map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let i = i64::from_value(v)?;
        isize::try_from(i).map_err(|_| DeError::custom(format!("{i} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

// The blanket `Arc<T>` impls require `T: Sized`; interned strings need
// their own.
impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            _ => Err(DeError::expected("string", "Arc<str>")),
        }
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected {N} elements, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+ $(,)?))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => Ok(($(
                        $t::from_value(
                            items.get($i).ok_or_else(|| {
                                DeError::custom(format!("missing tuple element {}", $i))
                            })?,
                        )?,
                    )+)),
                    _ => Err(DeError::expected("sequence", "tuple")),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "BTreeSet")),
        }
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "HashSet")),
        }
    }
}

impl<K, V> Serialize for HashMap<K, V>
where
    K: Serialize + Ord + Eq + Hash,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        map_to_value(keys.into_iter().map(|k| (k, &self[k])))
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

/// Maps serialize as JSON objects when keys serialize to strings, the
/// way serde_json renders string-keyed maps; otherwise as `[k, v]` pairs.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Value, Value)> = entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Map(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    let Value::Str(k) = k else { unreachable!() };
                    (k, v)
                })
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_value<K, V, M>(v: &Value) -> Result<M, DeError>
where
    K: Deserialize,
    V: Deserialize,
    M: FromIterator<(K, V)>,
{
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|pair| {
                let Value::Seq(kv) = pair else {
                    return Err(DeError::expected("[key, value] pair", "map"));
                };
                if kv.len() != 2 {
                    return Err(DeError::expected("[key, value] pair", "map"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect(),
        _ => Err(DeError::expected("map", "map")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_through_json_text() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::UInt(42),
            Value::Float(16.0),
            Value::Float(1.25e-9),
            Value::Str("a \"quoted\"\nline".to_string()),
        ] {
            let text = v.to_json();
            assert_eq!(Value::parse_json(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::UInt(1), Value::Null])),
            (
                "b".into(),
                Value::Map(vec![("c".into(), Value::Float(0.5))]),
            ),
        ]);
        assert_eq!(Value::parse_json(&v.to_json()).unwrap(), v);
        assert_eq!(Value::parse_json(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Value::Float(f).to_json();
            assert_eq!(text, "null", "{f}");
            assert_eq!(Value::parse_json(&text).unwrap(), Value::Null);
        }
    }

    #[test]
    fn float_text_is_exact() {
        let f = 0.1f64 + 0.2f64;
        let Value::Float(back) = Value::parse_json(&Value::Float(f).to_json()).unwrap() else {
            panic!("float expected");
        };
        assert_eq!(back.to_bits(), f.to_bits());
    }

    #[test]
    fn indexing_matches_serde_json_semantics() {
        let mut v = Value::parse_json(r#"{"xs": [1, 2, 3]}"#).unwrap();
        assert_eq!(v["xs"][1], Value::UInt(2));
        assert_eq!(v["missing"], Value::Null);
        v["xs"][0] = Value::UInt(9);
        v["new"] = Value::Bool(false);
        assert_eq!(v["xs"][0], Value::UInt(9));
        assert_eq!(v["new"], Value::Bool(false));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Value::parse_json("{not json").is_err());
        assert!(Value::parse_json("[1, 2").is_err());
        assert!(Value::parse_json("12 34").is_err());
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = Value::parse_json(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Depth just inside the limit still parses.
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse_json(&ok).is_ok());
    }
}
