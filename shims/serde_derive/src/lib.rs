//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde ecosystem (see `shims/README.md`). This crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros that
//! generate implementations of the shim `serde` crate's value-tree traits.
//!
//! Supported input shapes (everything the Herald workspace uses):
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   sequences),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! using them produces a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Field layout of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances `i` past outer attributes (`#[...]`) and visibility
/// (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas. Token trees make this
/// trivial: commas nested in `<...>` do not exist at this level because
/// generic arguments only appear inside type positions, which we split
/// *around*, and commas inside groups are swallowed by their `Group`.
/// The one exception is commas inside generic types like `Vec<(A, B)>` —
/// those live inside a `Group` (the tuple) or behind `<`, so we track
/// angle-bracket depth explicitly.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue,
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::shim::field(entries, {f:?}, {name:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let entries = ::serde::shim::entries(v, {name:?})?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join("\n")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                 ::serde::shim::elem(seq, {i}, {name:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let seq = ::serde::shim::seq(v, {name:?})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::shim::elem(seq, {i}, {name:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let seq = ::serde::shim::seq(payload, {name:?})?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::shim::field(entries, {f:?}, {name:?})?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let entries = ::serde::shim::entries(payload, {name:?})?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join("\n")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            let fallback = if tagged_arms.is_empty() {
                format!(
                    "_ => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(\"<non-string>\", {name:?})),"
                )
            } else {
                format!(
                    "_ => {{\n\
                         let (tag, payload) = ::serde::shim::tagged(v, {name:?})?;\n\
                         match tag {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::unknown_variant(other, {name:?})),\n\
                         }}\n\
                     }}",
                    tagged_arms.join("\n")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::unknown_variant(other, {name:?})),\n\
                             }},\n\
                             {fallback}\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n")
            )
        }
    }
}
