//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde ecosystem (see `shims/README.md`). This crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros that
//! generate implementations of the shim `serde` crate's value-tree traits.
//!
//! Supported input shapes (everything the Herald workspace uses):
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   sequences),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics are intentionally unsupported; using them produces a compile
//! error rather than silently wrong code. The only `#[serde(...)]`
//! attributes understood are the field-level `#[serde(default)]` and
//! `#[serde(default = "path")]` (a missing field deserializes via
//! `Default::default()` / `path()`, exactly like real serde); any other
//! serde attribute is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Field layout of a struct or enum variant.
enum Fields {
    Named(Vec<FieldDef>),
    Tuple(usize),
    Unit,
}

/// One named field: its identifier plus the `#[serde(default)]` shape —
/// `None` (required), `Some("")` (`Default::default()`), or
/// `Some(path)` (call `path()`).
struct FieldDef {
    name: String,
    default: Option<String>,
}

struct Variant {
    name: String,
    fields: Fields,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances `i` past outer attributes (`#[...]`) and visibility
/// (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas. Token trees make this
/// trivial: commas nested in `<...>` do not exist at this level because
/// generic arguments only appear inside type positions, which we split
/// *around*, and commas inside groups are swallowed by their `Group`.
/// The one exception is commas inside generic types like `Vec<(A, B)>` —
/// those live inside a `Group` (the tuple) or behind `<`, so we track
/// angle-bracket depth explicitly.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<FieldDef>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        let default = parse_field_attrs(&chunk, &mut i)?;
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(FieldDef {
                name: id.to_string(),
                default,
            }),
            None => continue,
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

/// Advances `i` past a field's outer attributes and visibility, returning
/// the `#[serde(default...)]` shape if one was present (see [`FieldDef`]).
fn parse_field_attrs(chunk: &[TokenTree], i: &mut usize) -> Result<Option<String>, String> {
    let mut default = None;
    loop {
        match chunk.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if let Some(TokenTree::Group(g)) = chunk.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        if let Some(d) = parse_serde_default(g.stream())? {
                            default = Some(d);
                        }
                        *i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(chunk.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(default),
        }
    }
}

/// Parses the contents of one `#[...]` attribute. Non-serde attributes
/// (doc comments etc.) yield `Ok(None)`; a serde attribute must be
/// `default` or `default = "path"` — anything else is an error so
/// unsupported serde attributes cannot be silently dropped.
fn parse_serde_default(stream: TokenStream) -> Result<Option<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let (head, group) = match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if g.delimiter() == Delimiter::Parenthesis =>
        {
            (id.to_string(), g)
        }
        _ => return Ok(None),
    };
    if head != "serde" {
        return Ok(None);
    }
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "default" => {
            if inner.len() == 1 {
                return Ok(Some(String::new()));
            }
            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)), None) =
                (inner.get(1), inner.get(2), inner.get(3))
            {
                if eq.as_char() == '=' {
                    let path = lit.to_string();
                    let path = path.trim_matches('"');
                    if !path.is_empty() {
                        return Ok(Some(path.to_string()));
                    }
                }
            }
            Err(format!(
                "serde shim derive: unsupported #[serde(default ...)] shape: {inner:?}"
            ))
        }
        _ => Err(format!(
            "serde shim derive supports only #[serde(default)] / \
             #[serde(default = \"path\")], found #[serde({inner:?})]"
        )),
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// The deserialization initializer of one named field: a required field
/// errors when missing; a `#[serde(default...)]` field falls back to its
/// default expression.
fn named_field_init(f: &FieldDef, ty: &str) -> String {
    let fname = &f.name;
    match &f.default {
        None => format!(
            "{fname}: ::serde::Deserialize::from_value(\
             ::serde::shim::field(entries, {fname:?}, {ty:?})?)?,"
        ),
        Some(path) => {
            let fallback = if path.is_empty() {
                "::std::default::Default::default()".to_string()
            } else {
                format!("{path}()")
            };
            format!(
                "{fname}: match ::serde::shim::opt_field(entries, {fname:?}) {{\n\
                     ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                     ::std::option::Option::None => {fallback},\n\
                 }},"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| named_field_init(f, name)).collect();
                    format!(
                        "let entries = ::serde::shim::entries(v, {name:?})?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join("\n")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                 ::serde::shim::elem(seq, {i}, {name:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let seq = ::serde::shim::seq(v, {name:?})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::shim::elem(seq, {i}, {name:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let seq = ::serde::shim::seq(payload, {name:?})?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| named_field_init(f, name)).collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let entries = ::serde::shim::entries(payload, {name:?})?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join("\n")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            let fallback = if tagged_arms.is_empty() {
                format!(
                    "_ => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(\"<non-string>\", {name:?})),"
                )
            } else {
                format!(
                    "_ => {{\n\
                         let (tag, payload) = ::serde::shim::tagged(v, {name:?})?;\n\
                         match tag {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::unknown_variant(other, {name:?})),\n\
                         }}\n\
                     }}",
                    tagged_arms.join("\n")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::unknown_variant(other, {name:?})),\n\
                             }},\n\
                             {fallback}\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n")
            )
        }
    }
}
