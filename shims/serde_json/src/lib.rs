//! Offline stand-in for `serde_json` (see `shims/README.md`).
//!
//! Renders and parses the shim `serde` crate's [`Value`] tree as JSON,
//! mirroring the subset of the real crate's API the Herald workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], [`Value`]
//! with `Index`/`IndexMut`, and the [`json!`] macro.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wraps a message, like `serde_json::Error::custom`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::custom(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes a value to pretty (two-space indented) JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Value::parse_json(text)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from literals and expressions — a subset of the
/// real macro. Values are Rust expressions (anything `Serialize`); nest
/// objects with explicit inner `json!({...})` calls.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([$($elem:expr),* $(,)?]) => {
        $crate::Value::Seq(vec![$($crate::to_value(&$elem)),*])
    };
    ({$($key:literal : $val:expr),* $(,)?}) => {
        $crate::Value::Map(vec![$((String::from($key), $crate::to_value(&$val))),*])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_derived_values() {
        let v: Vec<(String, u32)> = vec![("a".into(), 1), ("b".into(), 2)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, u32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_covers_literals() {
        assert_eq!(json!(3), Value::UInt(3));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(
            json!([1, 2]),
            Value::Seq(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            json!({"k": 1}),
            Value::Map(vec![("k".into(), Value::UInt(1))])
        );
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_str::<u32>("{oops").is_err());
    }
}
