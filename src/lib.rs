//! # Herald — Heterogeneous Dataflow Accelerators for Multi-DNN Workloads
//!
//! An umbrella crate re-exporting the entire Herald reproduction stack.
//! See the individual crates for details:
//!
//! * [`models`] — DNN intermediate representation and model zoo
//! * [`dataflow`] — loop-nest dataflow / mapping representation
//! * [`cost`] — MAESTRO-style analytical latency/energy cost model
//! * [`arch`] — accelerator taxonomy (FDA, SM-FDA, RDA, HDA)
//! * [`core`] — the Herald framework: execution model, schedulers, DSE
//! * [`workloads`] — the paper's multi-DNN evaluation workloads
//!
//! The documented entry point is the [`Experiment`] builder: describe a
//! workload, a hardware target and the search knobs, and `run()` returns
//! a typed `Result` — no panicking paths on the happy path.
//!
//! # Quickstart
//!
//! ```
//! use herald::prelude::*;
//!
//! # fn main() -> Result<(), HeraldError> {
//! // Co-optimize partitioning + schedule for the AR/VR-A workload on an
//! // edge-class Maelstrom HDA.
//! let outcome = Experiment::new(herald::workloads::arvr_a())
//!     .on(AcceleratorClass::Edge)
//!     .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
//!     .strategy(SearchStrategy::Exhaustive)
//!     .fast()
//!     .run()?;
//! println!("best design: {} -> {}", outcome.best().partition, outcome.report());
//! assert!(outcome.latency_s() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Streaming scenarios
//!
//! [`Experiment::scenario`] runs a continuous multi-tenant frame stream
//! on the event-driven simulation core instead of a one-shot frame: each
//! [`Scenario`](herald_workloads::Scenario) stream has an arrival
//! process, an optional per-frame deadline, and may swap workloads
//! mid-run; an online scheduling decision happens at every arrival and
//! swap, served incrementally from per-stream schedule memos that a
//! workload swap invalidates (bit-identical to rescheduling every frame,
//! at a fraction of the work). The resulting
//! [`core::sim::StreamReport`] carries throughput, p50/p95/p99 frame
//! latency, deadline-miss rates (including windowed transient views),
//! per-accelerator utilization over time, and the scheduling-work
//! counters (compiles, cache-hit rate, placement evaluations). Attach a
//! shared [`core::ctx::EvalContext`] via
//! [`Experiment::with_context`] to reuse cost-model and schedule memos
//! across experiments.
//!
//! ```
//! use herald::prelude::*;
//!
//! # fn main() -> Result<(), HeraldError> {
//! let scenario = Scenario::new("camera", 0.1).stream(
//!     StreamSpec::periodic(
//!         "cam",
//!         herald::workloads::single_model(herald::models::zoo::mobilenet_v1(), 1),
//!         30.0,
//!     )
//!     .with_deadline(1.0 / 30.0),
//! );
//! let outcome = Experiment::new(scenario.design_workload())
//!     .on_accelerator(AcceleratorConfig::fda(
//!         DataflowStyle::Nvdla,
//!         AcceleratorClass::Edge.resources(),
//!     ))
//!     .scenario(&scenario)?;
//! assert_eq!(outcome.report().frames().len(), 3);
//! assert!(outcome.throughput_fps() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Fleet serving
//!
//! [`Experiment::fleet`] scales a scenario out to a *pool* of
//! accelerators behind a dispatch policy — the serving-layer view of a
//! multi-chip deployment. Frames are routed by a deterministic
//! dispatcher ([`DispatchPolicy`](core::fleet::DispatchPolicy):
//! round-robin, least-loaded, or deadline-aware, with optional
//! admission control), each chip simulates its shard on its own worker
//! thread, and the merged
//! [`core::fleet::FleetReport`] carries aggregate throughput, latency
//! percentiles, per-chip utilization and deadline-miss breakdowns. A
//! 1-chip fleet is bit-identical to [`Experiment::scenario`].
//!
//! ```
//! use herald::prelude::*;
//!
//! # fn main() -> Result<(), HeraldError> {
//! // 200 frames/s aggregate from 4 Poisson tenants, served by 2 chips.
//! let scenario = herald::workloads::fleet_mix_stream(4, 200.0, 0.1, 0.04, 42);
//! let chip = AcceleratorConfig::fda(
//!     DataflowStyle::Nvdla,
//!     AcceleratorClass::Edge.resources(),
//! );
//! let outcome = Experiment::new(scenario.design_workload())
//!     .dispatcher(DispatchPolicy::DeadlineAware)
//!     .fleet(&FleetConfig::homogeneous(&chip, 2), &scenario)?;
//! assert_eq!(outcome.chips.len(), 2);
//! assert!(outcome.throughput_fps() > 0.0);
//! # Ok(())
//! # }
//! ```

//! # Online fleet control
//!
//! [`Experiment::controller`] closes the loop over a fleet run: a
//! [`core::controller::FleetController`] observes windowed per-chip
//! telemetry at a fixed cadence and may scale the fleet up or down
//! under an area budget, migrate a stream (with a handoff cost while
//! in-flight frames drain in place), or repartition a chip's
//! sub-accelerators mid-run. The
//! [`core::controller::ControlledFleetReport`] carries the fleet
//! outcome plus the reconfiguration-event log and transient
//! miss/recovery metrics; the
//! [`core::controller::StaticController`] policy is bit-identical to
//! [`Experiment::fleet`].
//!
//! ```
//! use herald::prelude::*;
//!
//! # fn main() -> Result<(), HeraldError> {
//! // A diurnal ramp overwhelms one edge chip at its peak; the
//! // autoscaler grows the fleet from a one-chip menu.
//! let scenario = herald::workloads::diurnal_ramp_trace(2, 4.0, 12.0, 0.4, 3.0, 7);
//! let chip = AcceleratorConfig::fda(
//!     DataflowStyle::Nvdla,
//!     AcceleratorClass::Edge.resources(),
//! );
//! let control = ControllerConfig::new(0.75, ControllerPolicy::autoscaler())
//!     .with_menu(vec![chip.clone()])
//!     .with_area_budget(4.0 * chip.area_mm2());
//! let outcome = Experiment::new(scenario.design_workload())
//!     .dispatcher(DispatchPolicy::LeastLoaded)
//!     .controller(&FleetConfig::homogeneous(&chip, 1), &control, &scenario)?;
//! assert_eq!(outcome.report().epochs(), 4);
//! assert!(outcome.actions_applied() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! # Fleet design-space exploration
//!
//! [`Experiment::fleet_search`] searches over fleet *compositions*:
//! which chips (from a menu of designs), how many, and which dispatch
//! policy, under a silicon-area budget. Candidates are pruned by an
//! equivalence memo and predicted-vector dominance before the
//! survivors are fully simulated, and the result is a deterministic
//! Pareto frontier over {throughput, p99 latency, deadline-miss rate,
//! area} ([`core::dse::FleetSearchOutcome`]).
//!
//! ```
//! use herald::prelude::*;
//!
//! # fn main() -> Result<(), HeraldError> {
//! let scenario = herald::workloads::fleet_mix_stream(2, 60.0, 0.1, 0.05, 7);
//! let res = AcceleratorClass::Edge.resources();
//! let menu = [
//!     AcceleratorConfig::fda(DataflowStyle::Nvdla, res),
//!     AcceleratorConfig::fda(DataflowStyle::ShiDianNao, res),
//! ];
//! let outcome = Experiment::new(scenario.design_workload())
//!     .fast()
//!     .fleet_search(FleetDseConfig::fast(), &menu, &scenario)?;
//! assert!(!outcome.frontier().is_empty());
//! assert!(outcome.stats().skipped() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use herald_arch as arch;
pub use herald_core as core;
pub use herald_cost as cost;
pub use herald_dataflow as dataflow;
pub use herald_models as models;
pub use herald_workloads as workloads;

mod experiment;

pub use experiment::{
    ControlledFleetOutcome, Experiment, ExperimentOutcome, FleetOutcome, StreamOutcome,
};
pub use herald_core::error::HeraldError;

/// Commonly used items, re-exported for ergonomic downstream use.
pub mod prelude {
    pub use crate::experiment::{
        ControlledFleetOutcome, Experiment, ExperimentOutcome, FleetOutcome, StreamOutcome,
    };
    pub use herald_arch::{
        AcceleratorClass, AcceleratorConfig, AcceleratorStyle, HardwareResources, Partition,
        SubAccelerator,
    };
    pub use herald_core::{
        controller::{
            ControlAction, ControlledFleetReport, ControlledFleetSimulator, ControllerConfig,
            ControllerPolicy, FleetController, MissWindow, ReconfigurationEvent,
        },
        ctx::{EvalContext, EvalSnapshot, EvalStats},
        dse::{
            DseConfig, DseEngine, DseOutcome, FleetCandidate, FleetDseConfig, FleetDseEngine,
            FleetSearchOutcome, FleetSearchStats, SearchStrategy,
        },
        error::HeraldError,
        exec::{ExecutionReport, ScheduleSimulator},
        fleet::{
            AdmissionPolicy, DispatchPolicy, Dispatcher, FleetConfig, FleetReport, FleetSimulator,
        },
        sched::{
            GreedyScheduler, HeraldScheduler, IncrementalScheduler, OrderingPolicy, Schedule,
            Scheduler, SchedulerConfig,
        },
        sim::{
            FrameRecord, HotPathProfile, MemProfile, QuantileSketch, ReportMode, ReschedulePolicy,
            StreamReport, StreamSimulator, StreamStats, SwapRecord,
        },
        Metric,
    };
    pub use herald_cost::{CostModel, CostQuery, EnergyModel, LayerCost};
    pub use herald_dataflow::{DataflowStyle, Mapping, MappingBuilder};
    pub use herald_models::{DnnModel, Layer, LayerOp, ModelBuilder, TensorShape};
    pub use herald_workloads::{
        ArrivalProcess, MultiDnnWorkload, Scenario, StreamSpec, WorkloadInstance, WorkloadSwap,
    };
}
