//! # Herald — Heterogeneous Dataflow Accelerators for Multi-DNN Workloads
//!
//! An umbrella crate re-exporting the entire Herald reproduction stack.
//! See the individual crates for details:
//!
//! * [`models`] — DNN intermediate representation and model zoo
//! * [`dataflow`] — loop-nest dataflow / mapping representation
//! * [`cost`] — MAESTRO-style analytical latency/energy cost model
//! * [`arch`] — accelerator taxonomy (FDA, SM-FDA, RDA, HDA)
//! * [`core`] — the Herald framework: execution model, schedulers, DSE
//! * [`workloads`] — the paper's multi-DNN evaluation workloads
//!
//! # Quickstart
//!
//! ```
//! use herald::prelude::*;
//!
//! // Build the AR/VR-A workload on an edge-class Maelstrom HDA and
//! // co-optimize partitioning + schedule with Herald.
//! let workload = herald::workloads::arvr_a();
//! let class = AcceleratorClass::Edge;
//! let styles = vec![DataflowStyle::Nvdla, DataflowStyle::ShiDianNao];
//! let dse = DseEngine::new(DseConfig::fast());
//! let outcome = dse.co_optimize(&workload, class.resources(), &styles);
//! let best = outcome.best().expect("non-empty design space");
//! assert!(best.report.total_latency_s() > 0.0);
//! ```

pub use herald_arch as arch;
pub use herald_core as core;
pub use herald_cost as cost;
pub use herald_dataflow as dataflow;
pub use herald_models as models;
pub use herald_workloads as workloads;

/// Commonly used items, re-exported for ergonomic downstream use.
pub mod prelude {
    pub use herald_arch::{
        AcceleratorClass, AcceleratorConfig, AcceleratorStyle, HardwareResources, Partition,
        SubAccelerator,
    };
    pub use herald_core::{
        dse::{DseConfig, DseEngine, DseOutcome, SearchStrategy},
        exec::{ExecutionReport, ScheduleSimulator},
        sched::{
            GreedyScheduler, HeraldScheduler, OrderingPolicy, Schedule, Scheduler,
            SchedulerConfig,
        },
        Metric,
    };
    pub use herald_cost::{CostModel, CostQuery, EnergyModel, LayerCost};
    pub use herald_dataflow::{DataflowStyle, Mapping, MappingBuilder};
    pub use herald_models::{DnnModel, Layer, LayerOp, ModelBuilder, TensorShape};
    pub use herald_workloads::{MultiDnnWorkload, WorkloadInstance};
}
