//! The [`Experiment`] facade: one validated, fallible entry point for
//! the whole Herald pipeline.
//!
//! The seed exposed three separate entry points — `DseEngine` for
//! co-optimization, `Scheduler::schedule_and_simulate` for fixed designs,
//! and `ScheduleSimulator` for replay — each with its own panic paths.
//! `Experiment` unifies them behind a builder: describe the workload, the
//! hardware target (a class budget to search over, or a fixed
//! accelerator to evaluate), and the search knobs, then call
//! [`Experiment::run`] for a typed `Result`.
//!
//! ```
//! use herald::prelude::*;
//!
//! # fn main() -> Result<(), HeraldError> {
//! let outcome = Experiment::new(herald::workloads::arvr_a())
//!     .on(AcceleratorClass::Edge)
//!     .with_styles([DataflowStyle::Nvdla, DataflowStyle::ShiDianNao])
//!     .fast()
//!     .run()?;
//! assert!(outcome.best().latency_s() > 0.0);
//! # Ok(())
//! # }
//! ```

use herald_arch::{AcceleratorClass, AcceleratorConfig, HardwareResources, Partition};
use herald_core::controller::{ControlledFleetReport, ControlledFleetSimulator, ControllerConfig};
use herald_core::ctx::EvalContext;
use herald_core::dse::{
    DesignPoint, DseConfig, DseEngine, FleetDseConfig, FleetDseEngine, FleetSearchOutcome,
    SearchStrategy,
};
use herald_core::error::HeraldError;
use herald_core::fleet::{
    AdmissionPolicy, DispatchPolicy, FleetConfig, FleetReport, FleetSimulator,
};
use herald_core::sched::{HeraldScheduler, IncrementalScheduler, SchedulerConfig};
use herald_core::sim::{
    HotPathProfile, ReportMode, ReschedulePolicy, StreamReport, StreamSimulator,
};
use herald_cost::Metric;
use herald_dataflow::DataflowStyle;
use herald_workloads::{MultiDnnWorkload, Scenario};
use serde::Serialize;

/// A builder describing one Herald experiment end to end.
///
/// Construct with [`Experiment::new`], chain configuration, finish with
/// [`Experiment::run`]. All validation happens in `run`, which returns a
/// [`HeraldError`] instead of panicking on bad input.
///
/// The target is whichever kind of call came last: `.on_accelerator`
/// switches to fixed-target evaluation, while `.on` / `.with_resources`
/// / `.with_styles` switch (back) to a partition search. Search settings
/// accumulate — switching to a fixed target and back never discards a
/// previously configured budget or style set.
#[derive(Debug, Clone)]
pub struct Experiment {
    workload: MultiDnnWorkload,
    resources: Option<HardwareResources>,
    styles: Vec<DataflowStyle>,
    fixed: Option<AcceleratorConfig>,
    dse: DseConfig,
    metric: Option<Metric>,
    fast: bool,
    scheduler_explicit: bool,
    refine_rounds: usize,
    ctx: Option<EvalContext>,
    reschedule: ReschedulePolicy,
    dispatcher: DispatchPolicy,
    admission: AdmissionPolicy,
    admission_explicit: bool,
    report: ReportMode,
}

impl Experiment {
    /// Starts an experiment on a workload.
    pub fn new(workload: MultiDnnWorkload) -> Self {
        Self {
            workload,
            resources: None,
            styles: Vec::new(),
            fixed: None,
            dse: DseConfig::default(),
            metric: None,
            fast: false,
            scheduler_explicit: false,
            refine_rounds: 0,
            ctx: None,
            reschedule: ReschedulePolicy::default(),
            dispatcher: DispatchPolicy::default(),
            admission: AdmissionPolicy::default(),
            admission_explicit: false,
            report: ReportMode::Exact,
        }
    }

    /// Chooses how streaming reports aggregate frames, for
    /// [`Experiment::scenario`], [`Experiment::fleet`] and
    /// [`Experiment::controller`] alike: [`ReportMode::Exact`]
    /// (default) retains every frame record, while
    /// [`ReportMode::Sketch`] streams them through a mergeable quantile
    /// sketch plus per-stream aggregates in O(buckets + streams) memory
    /// — the knob that makes million-stream scenarios fit. Scalar
    /// metrics are identical across modes; percentiles stay within the
    /// sketch's configured relative error.
    #[must_use]
    pub fn report_mode(mut self, mode: ReportMode) -> Self {
        self.report = mode;
        self
    }

    /// Attaches a shared [`EvalContext`]: cost-model memos, the schedule
    /// memo and the evaluation counters persist across this experiment
    /// and every other experiment holding a clone of the same context —
    /// repeated [`Experiment::run`] / [`Experiment::scenario`] calls
    /// reuse each other's work instead of cold-starting.
    ///
    /// Without an explicit context each `run`/`scenario` call builds a
    /// private one.
    ///
    /// [`Experiment::fleet`] is the exception: fleet runs deliberately
    /// give every chip worker its own private context (chip isolation
    /// is what makes a [`FleetReport`] independent of thread
    /// interleaving), so an attached context is not consulted there.
    /// [`Experiment::fleet_search`] uses the context for its menu
    /// derivation and screening estimates but inherits the same
    /// per-chip isolation for the full simulations — so a context
    /// carrying a non-default cost model skews screening (pruning
    /// quality) without ever changing the reported simulated metrics.
    #[must_use]
    pub fn with_context(mut self, ctx: EvalContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Overrides the streaming rescheduling policy (incremental by
    /// default; [`ReschedulePolicy::FullReschedule`] forces the
    /// schedule-every-arrival baseline, which is bit-identical but far
    /// slower — useful for equivalence checks and benchmarks).
    #[must_use]
    pub fn reschedule_policy(mut self, policy: ReschedulePolicy) -> Self {
        self.reschedule = policy;
        self
    }

    /// Sets the fleet dispatch policy used by [`Experiment::fleet`]
    /// (round-robin by default).
    #[must_use]
    pub fn dispatcher(mut self, policy: DispatchPolicy) -> Self {
        self.dispatcher = policy;
        self
    }

    /// Sets the fleet admission policy used by [`Experiment::fleet`]
    /// (accept-all by default; [`AdmissionPolicy::DeadlineSlack`] sheds
    /// frames predicted to blow through their deadline).
    #[must_use]
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self.admission_explicit = true;
        self
    }

    /// Targets one of the paper's accelerator classes (edge / mobile /
    /// cloud resource budgets).
    #[must_use]
    pub fn on(self, class: AcceleratorClass) -> Self {
        self.with_resources(class.resources())
    }

    /// Targets an explicit resource budget (and switches back to search
    /// mode if a fixed accelerator was set).
    #[must_use]
    pub fn with_resources(mut self, resources: HardwareResources) -> Self {
        self.resources = Some(resources);
        self.fixed = None;
        self
    }

    /// Sets the dataflow styles of the HDA search (one sub-accelerator
    /// per style; at least two are required). Switches back to search
    /// mode if a fixed accelerator was set.
    #[must_use]
    pub fn with_styles(mut self, styles: impl IntoIterator<Item = DataflowStyle>) -> Self {
        self.styles = styles.into_iter().collect();
        self.fixed = None;
        self
    }

    /// Evaluates a fixed accelerator (FDA, SM-FDA, RDA, or a
    /// pre-partitioned HDA) instead of searching partitions.
    #[must_use]
    pub fn on_accelerator(mut self, config: AcceleratorConfig) -> Self {
        self.fixed = Some(config);
        self
    }

    /// Sets the partition-search strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.dse.strategy = strategy;
        self
    }

    /// Sets the optimization metric for both the DSE ranking and the
    /// per-candidate scheduler. Applied when `run` is called, so it wins
    /// over metrics embedded in [`Experiment::scheduler`] /
    /// [`Experiment::dse_config`] regardless of call order — the two can
    /// never silently desync.
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Overrides the scheduler configuration. An explicit scheduler is
    /// respected verbatim — [`Experiment::fast`] will not override its
    /// post-processing choice, in either call order.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.dse.scheduler = scheduler;
        self.scheduler_explicit = true;
        self
    }

    /// Overrides the full DSE configuration (granularity, parallelism,
    /// strategy, scheduler) in one call. Like [`Experiment::scheduler`],
    /// the embedded scheduler is treated as explicit.
    #[must_use]
    pub fn dse_config(mut self, config: DseConfig) -> Self {
        self.dse = config;
        self.scheduler_explicit = true;
        self
    }

    /// Sets the fusion granularity the scheduler places at: how many
    /// depth-wise consecutive layers of one model instance form one
    /// fused tile group (1 = Herald's whole-layer placement, the
    /// default; 0 is treated as 1). Orthogonal to
    /// [`Experiment::scheduler`] — setting only the granularity keeps
    /// the preset scheduler behavior (e.g. [`Experiment::fast`]'s
    /// post-processing shortcut) intact.
    #[must_use]
    pub fn fusion(mut self, granularity: usize) -> Self {
        self.dse.scheduler.fusion = granularity.max(1);
        self
    }

    /// Sets the fusion granularities the DSE sweeps as a design
    /// dimension alongside partitioning: every candidate partition is
    /// evaluated once per level. Levels are clamped to at least 1 and
    /// deduplicated; an empty list means the plain layer-placement
    /// sweep.
    #[must_use]
    pub fn fusion_levels(mut self, levels: impl IntoIterator<Item = usize>) -> Self {
        self.dse.fusion_levels = levels.into_iter().collect();
        self
    }

    /// Sets the PE / bandwidth split granularity of the sweep.
    #[must_use]
    pub fn granularity(mut self, pe_steps: usize, bw_steps: usize) -> Self {
        self.dse.pe_steps = pe_steps;
        self.dse.bw_steps = bw_steps;
        self
    }

    /// Switches to the coarse, seconds-scale preset
    /// ([`DseConfig::fast`]), keeping the configured strategy and metric.
    /// The granularity is applied immediately (a later
    /// [`Experiment::granularity`] call still wins); the preset's
    /// post-processing shortcut is applied at `run` and yields to any
    /// explicitly configured scheduler, regardless of call order.
    #[must_use]
    pub fn fast(mut self) -> Self {
        let fast = DseConfig::fast();
        self.dse.pe_steps = fast.pe_steps;
        self.dse.bw_steps = fast.bw_steps;
        self.fast = true;
        self
    }

    /// Enables hierarchical refinement around the incumbent best for
    /// `rounds` rounds after the main sweep.
    #[must_use]
    pub fn refined(mut self, rounds: usize) -> Self {
        self.refine_rounds = rounds;
        self
    }

    /// Validates the description and runs the pipeline.
    ///
    /// # Errors
    ///
    /// * [`HeraldError::EmptyWorkload`] — the workload has no layers;
    /// * [`HeraldError::InvalidResources`] — zero PEs, non-positive
    ///   bandwidth, empty global buffer, or no target specified;
    /// * [`HeraldError::TooFewStyles`] — an HDA search with fewer than
    ///   two dataflow styles;
    /// * [`HeraldError::EmptySearch`] — no candidate partition produced a
    ///   feasible design;
    /// * [`HeraldError::Simulation`] — a schedule failed to replay
    ///   (indicates a scheduler bug).
    pub fn run(mut self) -> Result<ExperimentOutcome, HeraldError> {
        if self.workload.total_layers() == 0 {
            return Err(HeraldError::EmptyWorkload {
                workload: self.workload.name().to_string(),
            });
        }
        self.normalize();
        let ctx = self.ctx.clone().unwrap_or_default();
        let engine = DseEngine::new(self.dse.clone());
        if let Some(config) = self.fixed {
            let report = engine.evaluate_config_in(&ctx, &self.workload, &config)?;
            let partition = partition_of(&config)?;
            let point = DesignPoint {
                partition,
                config,
                fusion: engine.config().scheduler.fusion.max(1),
                report,
            };
            return Ok(ExperimentOutcome {
                workload: self.workload.name().to_string(),
                accelerator: point.config.name().to_string(),
                metric: self.dse.metric,
                best_index: 0,
                points: vec![point],
            });
        }
        let resources = self
            .resources
            .ok_or_else(|| HeraldError::InvalidResources {
                reason: "no accelerator class or resource budget specified \
                     (call .on(...) or .with_resources(...))"
                    .to_string(),
            })?;
        validate_resources(resources)?;
        let outcome = if self.refine_rounds > 0 {
            engine.co_optimize_refined_in(
                &ctx,
                &self.workload,
                resources,
                &self.styles,
                self.refine_rounds,
            )?
        } else {
            engine.co_optimize_in(&ctx, &self.workload, resources, &self.styles)?
        };
        let best_index = best_index(&outcome.points, self.dse.metric).ok_or_else(|| {
            HeraldError::EmptySearch {
                workload: self.workload.name().to_string(),
            }
        })?;
        Ok(ExperimentOutcome {
            workload: self.workload.name().to_string(),
            accelerator: outcome.points[best_index].config.name().to_string(),
            metric: self.dse.metric,
            best_index,
            points: outcome.points,
        })
    }

    /// Runs a streaming [`Scenario`] on the event-driven simulation core
    /// instead of a one-shot frame.
    ///
    /// The hardware target follows the builder exactly like
    /// [`Experiment::run`]: a fixed accelerator is streamed directly,
    /// while a class budget plus styles first searches partitions against
    /// the scenario's aggregate design workload
    /// ([`Scenario::design_workload`] — the streaming analogue of a
    /// Table II frame) and streams on the winner. The workload passed to
    /// [`Experiment::new`] is not used here; frames come from the
    /// scenario's streams.
    ///
    /// The scheduler configured on the builder makes an *online*
    /// decision at every frame arrival and at every workload-change
    /// event; under the default [`ReschedulePolicy::Incremental`] most
    /// decisions are served from the per-stream schedule memo (the
    /// scheduler is deterministic, so this is bit-identical to
    /// rescheduling every frame — see
    /// [`StreamReport::schedule_cache_hit_rate`]).
    ///
    /// # Errors
    ///
    /// * [`HeraldError::Scenario`] — degenerate scenario description;
    /// * the same validation and search errors as [`Experiment::run`]
    ///   when a partition search is requested;
    /// * [`HeraldError::Simulation`] — a schedule failed to replay
    ///   (indicates a scheduler bug).
    pub fn scenario(self, scenario: &Scenario) -> Result<StreamOutcome, HeraldError> {
        self.scenario_inner(scenario, false)
            .map(|(outcome, _)| outcome)
    }

    /// [`Experiment::scenario`] plus the streaming engine's
    /// [`HotPathProfile`]: hot-path counters (fingerprint memo probes,
    /// arena reuse, admission batching) and per-phase wall-clock timers.
    /// The outcome is bit-identical to the unprofiled entry point — the
    /// profile travels beside the report, never inside it.
    ///
    /// # Errors
    ///
    /// As for [`Experiment::scenario`].
    pub fn scenario_profiled(
        self,
        scenario: &Scenario,
    ) -> Result<(StreamOutcome, HotPathProfile), HeraldError> {
        self.scenario_inner(scenario, true)
    }

    fn scenario_inner(
        mut self,
        scenario: &Scenario,
        profiled: bool,
    ) -> Result<(StreamOutcome, HotPathProfile), HeraldError> {
        self.normalize();
        let ctx = self.ctx.clone().unwrap_or_default();
        let config = match self.fixed.take() {
            Some(config) => config,
            None => {
                // Delegate the search to the one-shot pipeline on the
                // scenario's aggregate design workload, so every search
                // knob (strategy, granularity, refinement rounds) behaves
                // exactly as it does for `run` — and share this call's
                // context so the search warms the same memos.
                let design = scenario.design_workload();
                if design.total_layers() == 0 {
                    return Err(HeraldError::Scenario {
                        reason: format!(
                            "scenario {:?} has no layers to design for",
                            scenario.name()
                        ),
                    });
                }
                let mut search = self.clone();
                search.workload = design;
                search.ctx = Some(ctx.clone());
                search.run()?.best().config.clone()
            }
        };
        let scheduler = HeraldScheduler::new(self.dse.scheduler);
        let sim = StreamSimulator::new(&config, ctx.cost_model())
            .with_metric(self.dse.metric)
            .with_policy(self.reschedule)
            .with_report_mode(self.report)
            .with_context(&ctx);
        let (report, profile) = match self.reschedule {
            // The incremental wrapper adds the cross-call schedule memo;
            // the full baseline deliberately bypasses every cache layer.
            ReschedulePolicy::Incremental => {
                let incremental = IncrementalScheduler::new(scheduler, ctx.clone());
                if profiled {
                    sim.simulate_profiled(&incremental, scenario)?
                } else {
                    (
                        sim.simulate(&incremental, scenario)?,
                        HotPathProfile::default(),
                    )
                }
            }
            ReschedulePolicy::FullReschedule => {
                if profiled {
                    sim.simulate_profiled(&scheduler, scenario)?
                } else {
                    (
                        sim.simulate(&scheduler, scenario)?,
                        HotPathProfile::default(),
                    )
                }
            }
        };
        let outcome = StreamOutcome {
            scenario: scenario.name().to_string(),
            accelerator: config.name().to_string(),
            metric: self.dse.metric,
            report,
        };
        Ok((outcome, profile))
    }

    /// Runs a streaming [`Scenario`] across a *fleet* of accelerators
    /// behind the configured [`Experiment::dispatcher`] policy (and
    /// optional [`Experiment::admission`] control), instead of a single
    /// chip.
    ///
    /// The chips are taken verbatim from `fleet` — build one with
    /// [`FleetConfig::homogeneous`] from a fixed design or from a search
    /// winner (`outcome.best().config`). The scheduler, metric and
    /// rescheduling policy configured on the builder apply to every
    /// chip's online scheduling loop; each chip simulates on its own
    /// worker thread with a private evaluation context, so the outcome
    /// is bit-reproducible regardless of thread interleaving, and a
    /// 1-chip fleet is bit-identical to [`Experiment::scenario`] on the
    /// same chip.
    ///
    /// Because of that per-chip isolation, a context attached via
    /// [`Experiment::with_context`] is *not* consulted by fleet runs —
    /// its memos and counters neither feed nor observe the per-chip
    /// simulations.
    ///
    /// # Errors
    ///
    /// * [`HeraldError::Fleet`] — the fleet has no chips;
    /// * [`HeraldError::Scenario`] — degenerate scenario description;
    /// * [`HeraldError::Simulation`] — a schedule failed to replay
    ///   (indicates a scheduler bug);
    /// * [`HeraldError::WorkerPanicked`] — a per-chip worker panicked.
    pub fn fleet(
        mut self,
        fleet: &FleetConfig,
        scenario: &Scenario,
    ) -> Result<FleetOutcome, HeraldError> {
        self.normalize();
        let report = FleetSimulator::new(fleet)
            .with_scheduler(self.dse.scheduler)
            .with_metric(self.dse.metric)
            .with_policy(self.reschedule)
            .with_dispatcher(self.dispatcher)
            .with_admission(self.admission)
            .with_report_mode(self.report)
            .simulate(scenario)?;
        Ok(FleetOutcome {
            scenario: scenario.name().to_string(),
            policy: report.policy().to_string(),
            chips: report.chip_names().to_vec(),
            metric: self.dse.metric,
            report,
        })
    }

    /// [`Experiment::fleet`] plus the merged [`HotPathProfile`] of every
    /// per-chip engine and the dispatch walk's own byte accounting
    /// (`profile.mem`) — the fleet analogue of
    /// [`Experiment::scenario_profiled`]. The outcome is bit-identical
    /// to the unprofiled entry point; only the wall-clock phase timers
    /// vary run to run.
    ///
    /// # Errors
    ///
    /// As for [`Experiment::fleet`].
    pub fn fleet_profiled(
        mut self,
        fleet: &FleetConfig,
        scenario: &Scenario,
    ) -> Result<(FleetOutcome, HotPathProfile), HeraldError> {
        self.normalize();
        let (report, profile) = FleetSimulator::new(fleet)
            .with_scheduler(self.dse.scheduler)
            .with_metric(self.dse.metric)
            .with_policy(self.reschedule)
            .with_dispatcher(self.dispatcher)
            .with_admission(self.admission)
            .with_report_mode(self.report)
            .simulate_profiled(scenario)?;
        Ok((
            FleetOutcome {
                scenario: scenario.name().to_string(),
                policy: report.policy().to_string(),
                chips: report.chip_names().to_vec(),
                metric: self.dse.metric,
                report,
            },
            profile,
        ))
    }

    /// Runs a streaming [`Scenario`] across a fleet *under closed-loop
    /// control*: a [`herald_core::controller::FleetController`] observes
    /// windowed per-chip telemetry at the cadence configured in
    /// `control` and may scale the fleet up or down, migrate streams, or
    /// repartition a chip's sub-accelerators mid-run.
    ///
    /// The chips in `fleet` are the epoch-0 roster; `control` supplies
    /// the decision cadence, the policy
    /// ([`herald_core::controller::ControllerPolicy`]), the scale-up
    /// menu and area budget, and the reconfiguration cost model. The
    /// scheduler, metric, rescheduling policy, dispatcher and admission
    /// gate configured on the builder apply exactly as in
    /// [`Experiment::fleet`]; with the
    /// [`herald_core::controller::StaticController`] policy the run is
    /// bit-identical to [`Experiment::fleet`] on the same inputs. As
    /// with fleet runs, a context attached via
    /// [`Experiment::with_context`] is not consulted (per-chip isolation
    /// keeps the outcome independent of thread interleaving).
    ///
    /// # Errors
    ///
    /// * [`HeraldError::Fleet`] — the fleet has no chips;
    /// * [`HeraldError::Controller`] — degenerate controller description
    ///   (non-positive or non-finite cadence, zero-chip menu entry);
    /// * [`HeraldError::Scenario`] — degenerate scenario description;
    /// * [`HeraldError::Simulation`] — a schedule failed to replay
    ///   (indicates a scheduler bug);
    /// * [`HeraldError::WorkerPanicked`] — a per-chip worker panicked.
    pub fn controller(
        mut self,
        fleet: &FleetConfig,
        control: &ControllerConfig,
        scenario: &Scenario,
    ) -> Result<ControlledFleetOutcome, HeraldError> {
        self.normalize();
        let report = ControlledFleetSimulator::new(fleet, control)
            .with_scheduler(self.dse.scheduler)
            .with_metric(self.dse.metric)
            .with_policy(self.reschedule)
            .with_dispatcher(self.dispatcher)
            .with_admission(self.admission)
            .with_report_mode(self.report)
            .simulate(scenario)?;
        Ok(ControlledFleetOutcome {
            scenario: scenario.name().to_string(),
            policy: report.fleet().policy().to_string(),
            controller: report.controller().to_string(),
            chips: report.fleet().chip_names().to_vec(),
            metric: self.dse.metric,
            report,
        })
    }

    /// Searches fleet *compositions* for a scenario: which chips to
    /// build, how many, and which dispatch policy to run — the design
    /// layer above [`Experiment::fleet`], which simulates one given
    /// fleet.
    ///
    /// `menu` is the set of chip designs compositions draw from. Pass
    /// an explicit menu to search over hand-picked designs, or an
    /// *empty* menu to derive one from the builder: a fixed accelerator
    /// ([`Experiment::on_accelerator`]) becomes a 1-entry menu, while a
    /// class budget plus styles first runs the single-chip partition
    /// search against the scenario's aggregate design workload (exactly
    /// like [`Experiment::scenario`]) and uses the latency/energy
    /// Pareto-frontier designs as the menu, capped at the eight best
    /// under the search metric so a fine-granularity frontier cannot
    /// explode the composition space. Either way the single-chip
    /// search and the fleet search share this experiment's
    /// [`EvalContext`], so service estimates reuse the schedules the
    /// menu search already computed.
    ///
    /// Chip-count range, area budget, policy list, admission control —
    /// and the search's own scheduler and metric — come from `search`;
    /// knobs *explicitly* set on the builder override them
    /// (`.scheduler(...)` wins verbatim, `.fast()` applies its
    /// post-processing shortcut, `.metric(...)` wins over both, and a
    /// non-default `.admission(...)` replaces the search's admission,
    /// matching [`Experiment::fleet`]), exactly as those knobs behave
    /// in [`Experiment::run`]. The one exception is
    /// [`Experiment::dispatcher`]: it selects the *single* policy a
    /// `fleet()` run uses, so it never narrows the search — the policy
    /// list explored is always `search.policies`. A search config
    /// passed untouched is never silently rewritten. The result is the
    /// engine's [`FleetSearchOutcome`]: the simulated candidates, the
    /// {throughput, p99, miss rate, area} Pareto frontier, and the
    /// pruning statistics.
    ///
    /// # Errors
    ///
    /// * [`HeraldError::FleetSearch`] — degenerate search description
    ///   (see [`FleetDseEngine::search_in`]);
    /// * the same validation and search errors as [`Experiment::run`]
    ///   when a menu must be derived;
    /// * [`HeraldError::Scenario`] / [`HeraldError::Fleet`] /
    ///   [`HeraldError::Simulation`] /
    ///   [`HeraldError::WorkerPanicked`] — propagated from the fleet
    ///   evaluations.
    pub fn fleet_search(
        mut self,
        mut search: FleetDseConfig,
        menu: &[AcceleratorConfig],
        scenario: &Scenario,
    ) -> Result<FleetSearchOutcome, HeraldError> {
        self.normalize();
        // Builder knobs override the search config only when the user
        // explicitly set them; an untouched FleetDseConfig (e.g.
        // FleetDseConfig::fast with its post_process shortcut) is
        // respected verbatim.
        if self.scheduler_explicit {
            search.scheduler = self.dse.scheduler;
        } else if self.fast {
            search.scheduler.post_process = DseConfig::fast().scheduler.post_process;
        }
        if let Some(metric) = self.metric {
            search.metric = metric;
            search.scheduler.metric = metric;
        }
        // Admission has the same meaning in both places, so an
        // explicitly set builder admission overrides the search config
        // — matching `.fleet()`, and `.admission(AcceptAll)` really
        // does disable a search config's gate. The single
        // `.dispatcher()` knob does NOT narrow the search: the policy
        // *list* to explore is the search's own `policies`.
        if self.admission_explicit {
            search.admission = self.admission;
        }
        let ctx = self.ctx.clone().unwrap_or_default();
        let derived: Vec<AcceleratorConfig>;
        let menu: &[AcceleratorConfig] = if menu.is_empty() {
            derived = match self.fixed.take() {
                Some(config) => vec![config],
                None => {
                    // The same delegation `scenario()` uses: search the
                    // scenario's aggregate design workload, sharing this
                    // call's context so the fleet search's service
                    // estimates hit the schedules computed here.
                    let design = scenario.design_workload();
                    if design.total_layers() == 0 {
                        return Err(HeraldError::Scenario {
                            reason: format!(
                                "scenario {:?} has no layers to design for",
                                scenario.name()
                            ),
                        });
                    }
                    let mut single = self.clone();
                    single.workload = design;
                    single.ctx = Some(ctx.clone());
                    let outcome = single.run()?;
                    // A fine search granularity can put dozens of
                    // designs on the latency/energy frontier, and the
                    // composition space grows combinatorially in the
                    // menu — cap the derived menu at the best designs
                    // under the search metric (stable order, so the
                    // selection is deterministic).
                    let metric = search.metric;
                    let mut pareto = outcome.pareto();
                    pareto
                        .sort_by(|a, b| a.report.score(metric).total_cmp(&b.report.score(metric)));
                    const MENU_CAP: usize = 8;
                    let mut configs: Vec<AcceleratorConfig> = Vec::new();
                    for point in pareto {
                        if !configs.contains(&point.config) {
                            configs.push(point.config.clone());
                            if configs.len() == MENU_CAP {
                                break;
                            }
                        }
                    }
                    configs
                }
            };
            &derived
        } else {
            menu
        };
        FleetDseEngine::new(search).search_in(&ctx, scenario, menu)
    }

    /// Applies the deferred builder knobs — the `fast` preset's
    /// post-processing shortcut (which yields to an explicit
    /// scheduler) and the `metric` override (which wins over metrics
    /// embedded in scheduler/DSE configs regardless of call order) —
    /// shared by every finishing method so `run`, `scenario`, `fleet`
    /// and `fleet_search` can never diverge. Idempotent.
    fn normalize(&mut self) {
        if self.fast && !self.scheduler_explicit {
            self.dse.scheduler.post_process = DseConfig::fast().scheduler.post_process;
        }
        if let Some(metric) = self.metric {
            self.dse.metric = metric;
            self.dse.scheduler.metric = metric;
        }
    }
}

fn validate_resources(res: HardwareResources) -> Result<(), HeraldError> {
    if res.pes == 0 {
        return Err(HeraldError::InvalidResources {
            reason: "zero processing elements".to_string(),
        });
    }
    if res.bandwidth_gbps <= 0.0 {
        return Err(HeraldError::InvalidResources {
            reason: format!("non-positive bandwidth ({} GB/s)", res.bandwidth_gbps),
        });
    }
    if res.global_buffer_bytes == 0 {
        return Err(HeraldError::InvalidResources {
            reason: "empty global buffer".to_string(),
        });
    }
    Ok(())
}

/// Reconstructs the resource partition implied by a fixed configuration's
/// sub-accelerators, so fixed evaluations and searches share the
/// [`DesignPoint`] shape.
fn partition_of(config: &AcceleratorConfig) -> Result<Partition, HeraldError> {
    let pes: Vec<u32> = config.sub_accelerators().iter().map(|s| s.pes()).collect();
    let bw: Vec<f64> = config
        .sub_accelerators()
        .iter()
        .map(|s| s.bandwidth_gbps())
        .collect();
    Partition::new(pes, bw).map_err(|msg| HeraldError::InvalidResources { reason: msg })
}

fn best_index(points: &[DesignPoint], metric: Metric) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.report.score(metric).total_cmp(&b.report.score(metric)))
        .map(|(i, _)| i)
}

/// The result of a streaming [`Experiment::scenario`] run: the chosen
/// accelerator plus the full [`StreamReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamOutcome {
    /// Name of the scenario simulated.
    pub scenario: String,
    /// Name of the accelerator streamed on (the search winner, or the
    /// fixed target).
    pub accelerator: String,
    /// Metric the search minimized / the scheduler optimized.
    pub metric: Metric,
    report: StreamReport,
}

impl StreamOutcome {
    /// The streaming report: frames, percentiles, miss rates, swaps,
    /// utilization.
    #[must_use]
    pub fn report(&self) -> &StreamReport {
        &self.report
    }

    /// Aggregate throughput, frames per second of makespan.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        self.report.throughput_fps()
    }

    /// Deadline-miss rate over all deadline-carrying frames.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        self.report.deadline_miss_rate()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates [`HeraldError::Serialization`] (not expected for this
    /// type).
    pub fn to_json(&self) -> Result<String, HeraldError> {
        Ok(serde_json::to_string_pretty(self)?)
    }
}

/// The result of a fleet [`Experiment::fleet`] run: the dispatch policy
/// and chip roster plus the merged [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetOutcome {
    /// Name of the scenario served.
    pub scenario: String,
    /// Name of the dispatch policy that routed the frames.
    pub policy: String,
    /// Chip display names, in dispatch-index order.
    pub chips: Vec<String>,
    /// Metric the per-chip schedulers optimized.
    pub metric: Metric,
    report: FleetReport,
}

impl FleetOutcome {
    /// The merged fleet report: per-chip reports, aggregates, routing
    /// and drop records.
    #[must_use]
    pub fn report(&self) -> &FleetReport {
        &self.report
    }

    /// Aggregate throughput, completed frames per second of fleet
    /// makespan.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        self.report.throughput_fps()
    }

    /// Deadline-miss rate over all completed deadline-carrying frames.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        self.report.deadline_miss_rate()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates [`HeraldError::Serialization`] (not expected for this
    /// type).
    pub fn to_json(&self) -> Result<String, HeraldError> {
        Ok(serde_json::to_string_pretty(self)?)
    }
}

/// The result of a closed-loop [`Experiment::controller`] run: the
/// dispatch policy, controller and final chip roster plus the full
/// [`ControlledFleetReport`] (fleet outcome, reconfiguration-event log,
/// transient miss/recovery metrics).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControlledFleetOutcome {
    /// Name of the scenario served.
    pub scenario: String,
    /// Name of the dispatch policy that routed the frames.
    pub policy: String,
    /// Name of the controller policy that made the reconfiguration
    /// decisions.
    pub controller: String,
    /// Chip display names at the end of the run (initial roster plus
    /// any controller-added or reshaped chips), in dispatch-index order.
    pub chips: Vec<String>,
    /// Metric the per-chip schedulers optimized.
    pub metric: Metric,
    report: ControlledFleetReport,
}

impl ControlledFleetOutcome {
    /// The controlled-run report: the merged fleet outcome plus the
    /// reconfiguration-event audit trail and transient metrics.
    #[must_use]
    pub fn report(&self) -> &ControlledFleetReport {
        &self.report
    }

    /// Aggregate throughput, completed frames per second of fleet
    /// makespan.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        self.report.fleet().throughput_fps()
    }

    /// Deadline-miss rate over all completed deadline-carrying frames.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        self.report.fleet().deadline_miss_rate()
    }

    /// Number of control actions the run actually applied (rejected
    /// proposals are logged in the event trail but not counted here).
    #[must_use]
    pub fn actions_applied(&self) -> usize {
        self.report.actions_applied()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates [`HeraldError::Serialization`] (not expected for this
    /// type).
    pub fn to_json(&self) -> Result<String, HeraldError> {
        Ok(serde_json::to_string_pretty(self)?)
    }
}

/// The result of a run [`Experiment`]: the winning design plus the full
/// explored cloud, serializable for artifact pipelines.
///
/// The design cloud is only reachable through accessors, and
/// deserialization validates the winner invariant (non-empty cloud,
/// in-range winner index), so [`ExperimentOutcome::best`] is total: no
/// reachable state makes it panic.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentOutcome {
    /// Name of the workload evaluated.
    pub workload: String,
    /// Name of the winning accelerator configuration.
    pub accelerator: String,
    /// Metric the winner minimizes.
    pub metric: Metric,
    best_index: usize,
    points: Vec<DesignPoint>,
}

// Hand-written so that *every* deserialization path — `from_json` and
// direct `serde_json::from_str` alike — enforces the winner invariant
// the accessors rely on. Mirrors the field layout the derive would use.
impl serde::Deserialize for ExperimentOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        const TY: &str = "ExperimentOutcome";
        let entries = serde::shim::entries(v, TY)?;
        let field = |name| serde::shim::field(entries, name, TY);
        let outcome = ExperimentOutcome {
            workload: serde::Deserialize::from_value(field("workload")?)?,
            accelerator: serde::Deserialize::from_value(field("accelerator")?)?,
            metric: serde::Deserialize::from_value(field("metric")?)?,
            best_index: serde::Deserialize::from_value(field("best_index")?)?,
            points: serde::Deserialize::from_value(field("points")?)?,
        };
        if outcome.points.is_empty() {
            return Err(serde::DeError::custom("outcome has no design points"));
        }
        if outcome.best_index >= outcome.points().len() {
            return Err(serde::DeError::custom(format!(
                "best index {} out of range ({} points)",
                outcome.best_index,
                outcome.points().len()
            )));
        }
        Ok(outcome)
    }
}

impl ExperimentOutcome {
    /// The winning design point.
    pub fn best(&self) -> &DesignPoint {
        &self.points[self.best_index]
    }

    /// Every evaluated design point (a single entry for fixed-target
    /// experiments; the whole sweep cloud for searches).
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// The winning design's execution report.
    pub fn report(&self) -> &herald_core::exec::ExecutionReport {
        &self.best().report
    }

    /// Winning latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.best().latency_s()
    }

    /// Winning energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.best().energy_j()
    }

    /// Winning energy-delay product, J*s.
    pub fn edp(&self) -> f64 {
        self.best().edp()
    }

    /// The latency/energy Pareto frontier of the explored cloud.
    pub fn pareto(&self) -> Vec<&DesignPoint> {
        let coords: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.latency_s(), p.energy_j()))
            .collect();
        herald_core::pareto::pareto_frontier(&coords)
            .into_iter()
            .map(|i| &self.points[i])
            .collect()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates [`HeraldError::Serialization`] (not expected for this
    /// type).
    pub fn to_json(&self) -> Result<String, HeraldError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserializes from JSON. The winner invariant (non-empty cloud,
    /// in-range index) is enforced by the `Deserialize` impl itself, so
    /// direct `serde_json::from_str` is equally safe.
    ///
    /// # Errors
    ///
    /// [`HeraldError::Serialization`] on malformed JSON or an empty /
    /// inconsistent design cloud.
    pub fn from_json(json: &str) -> Result<Self, HeraldError> {
        Ok(serde_json::from_str(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use herald_models::zoo;
    use herald_workloads::StreamSpec;

    fn workload() -> MultiDnnWorkload {
        herald_workloads::single_model(zoo::mobilenet_v1(), 2)
    }

    fn styles() -> [DataflowStyle; 2] {
        [DataflowStyle::Nvdla, DataflowStyle::ShiDianNao]
    }

    #[test]
    fn search_finds_a_best_design() {
        let outcome = Experiment::new(workload())
            .on(AcceleratorClass::Edge)
            .with_styles(styles())
            .fast()
            .run()
            .unwrap();
        assert!(outcome.latency_s() > 0.0);
        assert!(outcome.points().len() > 1);
        assert!(outcome.pareto().contains(&outcome.best()));
    }

    #[test]
    fn fixed_target_evaluates_one_point() {
        let outcome = Experiment::new(workload())
            .on_accelerator(AcceleratorConfig::fda(
                DataflowStyle::Nvdla,
                AcceleratorClass::Edge.resources(),
            ))
            .run()
            .unwrap();
        assert_eq!(outcome.points().len(), 1);
        assert_eq!(outcome.accelerator, "FDA-NVDLA");
    }

    #[test]
    fn empty_workload_is_rejected() {
        let err = Experiment::new(MultiDnnWorkload::new("empty"))
            .on(AcceleratorClass::Edge)
            .with_styles(styles())
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            HeraldError::EmptyWorkload {
                workload: "empty".into()
            }
        );
    }

    #[test]
    fn target_switches_preserve_search_settings() {
        // Switching to a fixed target and back must not discard the
        // previously configured budget or styles, in either order.
        let outcome = Experiment::new(workload())
            .on(AcceleratorClass::Edge)
            .on_accelerator(AcceleratorConfig::rda(AcceleratorClass::Edge.resources()))
            .with_styles(styles())
            .fast()
            .run()
            .unwrap();
        assert!(outcome.points().len() > 1, "search ran, not the fixed RDA");

        let outcome = Experiment::new(workload())
            .with_styles(styles())
            .on_accelerator(AcceleratorConfig::rda(AcceleratorClass::Edge.resources()))
            .on(AcceleratorClass::Edge)
            .fast()
            .run()
            .unwrap();
        assert!(outcome.points().len() > 1);
    }

    #[test]
    fn direct_deserialization_enforces_winner_invariant() {
        // `serde_json::from_str` must be as safe as `from_json`: a
        // tampered best_index cannot produce an outcome whose accessors
        // panic.
        let outcome = Experiment::new(workload())
            .on(AcceleratorClass::Edge)
            .with_styles(styles())
            .fast()
            .run()
            .unwrap();
        let json = outcome.to_json().unwrap();
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value["best_index"] = serde_json::json!(999);
        assert!(serde_json::from_str::<ExperimentOutcome>(&value.to_string()).is_err());
        let back: ExperimentOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.best(), outcome.best());
    }

    #[test]
    fn fast_preset_yields_to_explicit_scheduler_in_any_order() {
        let explicit = SchedulerConfig {
            post_process: true,
            lookahead: 4,
            ..Default::default()
        };
        let run = |exp: Experiment| {
            exp.on(AcceleratorClass::Edge)
                .with_styles(styles())
                .run()
                .unwrap()
        };
        // The pipeline is deterministic, so order-independence is
        // observable as identical outcomes.
        let scheduler_then_fast = run(Experiment::new(workload()).scheduler(explicit).fast());
        let fast_then_scheduler = run(Experiment::new(workload()).fast().scheduler(explicit));
        assert_eq!(scheduler_then_fast, fast_then_scheduler);
    }

    #[test]
    fn missing_target_is_rejected() {
        let err = Experiment::new(workload())
            .with_styles(styles())
            .run()
            .unwrap_err();
        assert!(matches!(err, HeraldError::InvalidResources { .. }));
    }

    #[test]
    fn zero_pes_are_rejected() {
        // `HardwareResources::new` panics on zero budgets, so a degenerate
        // budget can only arrive through a struct literal (e.g. built from
        // deserialized config) — the facade must still reject it as a
        // typed error.
        let degenerate = HardwareResources {
            pes: 0,
            bandwidth_gbps: 16.0,
            global_buffer_bytes: 4 << 20,
        };
        let err = Experiment::new(workload())
            .with_resources(degenerate)
            .with_styles(styles())
            .run()
            .unwrap_err();
        assert!(matches!(err, HeraldError::InvalidResources { .. }));
    }

    #[test]
    fn no_styles_are_rejected() {
        let err = Experiment::new(workload())
            .on(AcceleratorClass::Edge)
            .run()
            .unwrap_err();
        assert_eq!(err, HeraldError::TooFewStyles { got: 0 });
    }

    #[test]
    fn metric_propagates_to_scheduler_regardless_of_call_order() {
        // `.metric()` is applied at run(), so a later `.scheduler()` /
        // `.dse_config()` cannot silently revert the scheduler's metric.
        let latency = Experiment::new(workload())
            .on(AcceleratorClass::Edge)
            .with_styles(styles())
            .metric(Metric::Latency)
            .scheduler(SchedulerConfig {
                post_process: false,
                ..Default::default()
            })
            .fast()
            .run()
            .unwrap();
        assert_eq!(latency.metric, Metric::Latency);
        // The latency-ranked winner minimizes latency over the cloud.
        for p in latency.points() {
            assert!(p.latency_s() >= latency.latency_s() - 1e-18);
        }
    }

    #[test]
    fn shared_context_is_warm_across_runs() {
        let ctx = EvalContext::new();
        let run = || {
            Experiment::new(workload())
                .on(AcceleratorClass::Edge)
                .with_styles(styles())
                .fast()
                .with_context(ctx.clone())
                .run()
                .unwrap()
        };
        let first = run();
        let runs = ctx.stats().scheduler_runs();
        assert!(runs > 0);
        // The identical search again: every candidate's schedule comes
        // from the context memo.
        let second = run();
        assert_eq!(first, second);
        assert_eq!(ctx.stats().scheduler_runs(), runs);
        assert!(ctx.stats().schedule_cache_hits() >= first.points().len() as u64);
    }

    #[test]
    fn reschedule_policies_agree_on_stream_outcomes() {
        let scenario = Scenario::new("policy", 0.05)
            .stream(StreamSpec::periodic("s", workload(), 60.0).with_deadline(0.1));
        let stream = |policy: ReschedulePolicy| {
            Experiment::new(workload())
                .on_accelerator(AcceleratorConfig::fda(
                    DataflowStyle::Nvdla,
                    AcceleratorClass::Edge.resources(),
                ))
                .reschedule_policy(policy)
                .scenario(&scenario)
                .unwrap()
        };
        let inc = stream(ReschedulePolicy::Incremental);
        let full = stream(ReschedulePolicy::FullReschedule);
        assert_eq!(inc.report().frames(), full.report().frames());
        assert!(inc.report().scheduler_invocations() < full.report().scheduler_invocations());
        assert!(inc.report().schedule_cache_hit_rate() > 0.5);
        assert_eq!(full.report().schedule_cache_hit_rate(), 0.0);
    }

    #[test]
    fn fleet_outcome_scales_and_serializes() {
        let scenario = herald_workloads::fleet_mix_stream(4, 160.0, 0.1, 0.05, 3);
        let chip = AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources());
        let run = |n: usize| {
            Experiment::new(scenario.design_workload())
                .dispatcher(DispatchPolicy::LeastLoaded)
                .fleet(&FleetConfig::homogeneous(&chip, n), &scenario)
                .unwrap()
        };
        let one = run(1);
        let two = run(2);
        assert_eq!(one.policy, "least-loaded");
        assert_eq!(two.chips.len(), 2);
        // Same generated traffic, conserved across the shards.
        assert_eq!(
            one.report().frames_total(),
            two.report().frames_total(),
            "sharding must conserve frames"
        );
        let json = one.to_json().unwrap();
        assert!(json.contains("least-loaded"));
    }

    #[test]
    fn fleet_search_with_explicit_menu_finds_a_frontier() {
        let scenario = herald_workloads::fleet_mix_stream(3, 90.0, 0.05, 0.06, 3);
        let res = AcceleratorClass::Edge.resources();
        let menu = [
            AcceleratorConfig::fda(DataflowStyle::Nvdla, res),
            AcceleratorConfig::fda(DataflowStyle::ShiDianNao, res),
        ];
        let outcome = Experiment::new(scenario.design_workload())
            .fast()
            .fleet_search(FleetDseConfig::fast(), &menu, &scenario)
            .unwrap();
        assert!(!outcome.frontier().is_empty());
        assert_eq!(outcome.menu().len(), 2);
        assert!(outcome.stats().skipped() > 0);
    }

    #[test]
    fn fleet_search_derives_its_menu_from_the_single_chip_search() {
        let scenario = herald_workloads::fleet_mix_stream(2, 60.0, 0.1, 0.05, 9);
        let ctx = EvalContext::new();
        let outcome = Experiment::new(scenario.design_workload())
            .on(AcceleratorClass::Edge)
            .with_styles(styles())
            .fast()
            .with_context(ctx.clone())
            .fleet_search(FleetDseConfig::fast(), &[], &scenario)
            .unwrap();
        // The menu is the single-chip pareto: HDA designs only.
        assert!(!outcome.menu().is_empty());
        assert!(outcome.menu().iter().all(|n| n.contains("HDA")));
        assert!(!outcome.frontier().is_empty());
        // The single-chip search warmed the shared context.
        assert!(ctx.stats().scheduler_runs() > 0);
    }

    #[test]
    fn fleet_search_respects_the_search_configs_scheduler() {
        // A FleetDseConfig passed untouched must reach the engine
        // verbatim: the facade with no explicit builder knobs is
        // bit-identical to driving FleetDseEngine directly.
        let scenario = herald_workloads::fleet_mix_stream(2, 70.0, 0.08, 0.05, 21);
        let res = AcceleratorClass::Edge.resources();
        let menu = [
            AcceleratorConfig::fda(DataflowStyle::Nvdla, res),
            AcceleratorConfig::fda(DataflowStyle::Eyeriss, res),
        ];
        let direct = herald_core::dse::FleetDseEngine::new(FleetDseConfig::fast())
            .search(&scenario, &menu)
            .unwrap();
        let via_facade = Experiment::new(scenario.design_workload())
            .fleet_search(FleetDseConfig::fast(), &menu, &scenario)
            .unwrap();
        assert_eq!(direct, via_facade);
    }

    #[test]
    fn fleet_search_honors_the_builders_admission_policy() {
        // A non-default builder admission reaches every candidate
        // evaluation, matching `.fleet()`: under overload with a tight
        // deadline, the gated search reports drops.
        let chip = AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources());
        let scenario = Scenario::new("overload", 0.02)
            .stream(StreamSpec::periodic("s", workload(), 400.0).with_deadline(0.003));
        let outcome = Experiment::new(workload())
            .admission(AdmissionPolicy::DeadlineSlack { slack: 1.0 })
            .fleet_search(FleetDseConfig::fast(), &[chip], &scenario)
            .unwrap();
        assert!(
            outcome.points().iter().any(|p| p.drop_rate > 0.0),
            "builder admission must gate the searched candidates"
        );
    }

    #[test]
    fn fleet_search_with_fixed_target_uses_a_one_chip_menu() {
        let scenario = herald_workloads::fleet_mix_stream(2, 60.0, 0.1, 0.05, 4);
        let outcome = Experiment::new(scenario.design_workload())
            .on_accelerator(AcceleratorConfig::fda(
                DataflowStyle::Nvdla,
                AcceleratorClass::Edge.resources(),
            ))
            .fleet_search(FleetDseConfig::fast(), &[], &scenario)
            .unwrap();
        assert_eq!(outcome.menu(), ["FDA-NVDLA"]);
        assert!(!outcome.frontier().is_empty());
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let scenario = herald_workloads::fleet_mix_stream(2, 40.0, 0.1, 0.05, 3);
        let err = Experiment::new(scenario.design_workload())
            .fleet(&FleetConfig::new(), &scenario)
            .unwrap_err();
        assert!(matches!(err, HeraldError::Fleet { .. }));
    }

    #[test]
    fn admission_policy_reaches_the_fleet() {
        // Overload one chip with a tight deadline: the facade-configured
        // admission gate must shed frames.
        let chip = AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources());
        let scenario = Scenario::new("overload", 0.02)
            .stream(StreamSpec::periodic("s", workload(), 400.0).with_deadline(0.003));
        let outcome = Experiment::new(workload())
            .dispatcher(DispatchPolicy::DeadlineAware)
            .admission(AdmissionPolicy::DeadlineSlack { slack: 1.0 })
            .fleet(&FleetConfig::homogeneous(&chip, 1), &scenario)
            .unwrap();
        assert!(!outcome.report().dropped().is_empty());
        assert!(outcome.report().drop_rate() > 0.0);
    }

    #[test]
    fn static_controller_outcome_matches_the_fleet_outcome() {
        use herald_core::controller::{ControllerConfig, ControllerPolicy};
        let scenario = herald_workloads::diurnal_ramp_trace(2, 4.0, 8.0, 0.4, 2.0, 5);
        let chip = AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources());
        let fleet = FleetConfig::homogeneous(&chip, 2);
        let control = ControllerConfig::new(0.5, ControllerPolicy::Static);
        let run = |exp: Experiment| exp.dispatcher(DispatchPolicy::LeastLoaded);
        let controlled = run(Experiment::new(scenario.design_workload()))
            .controller(&fleet, &control, &scenario)
            .unwrap();
        let plain = run(Experiment::new(scenario.design_workload()))
            .fleet(&fleet, &scenario)
            .unwrap();
        assert_eq!(controlled.report().fleet(), plain.report());
        assert_eq!(controlled.controller, "static");
        assert_eq!(controlled.policy, plain.policy);
        assert_eq!(controlled.chips, plain.chips);
        assert_eq!(controlled.actions_applied(), 0);
        assert!(controlled.to_json().unwrap().contains("\"static\""));
    }

    #[test]
    fn controller_outcome_surfaces_autoscaler_actions() {
        use herald_core::controller::{ControllerConfig, ControllerPolicy};
        let scenario = herald_workloads::diurnal_ramp_trace(2, 4.0, 12.0, 0.4, 3.0, 7);
        let chip = AcceleratorConfig::fda(DataflowStyle::Nvdla, AcceleratorClass::Edge.resources());
        let fleet = FleetConfig::homogeneous(&chip, 1);
        let control = ControllerConfig::new(0.5, ControllerPolicy::autoscaler())
            .with_menu(vec![chip.clone()])
            .with_area_budget(3.0 * chip.area_mm2());
        let outcome = Experiment::new(scenario.design_workload())
            .dispatcher(DispatchPolicy::LeastLoaded)
            .controller(&fleet, &control, &scenario)
            .unwrap();
        assert_eq!(outcome.controller, "threshold-autoscaler");
        assert_eq!(outcome.report().epochs(), 6);
        // The 1-chip fleet misses hard on the diurnal peak: the
        // autoscaler must have grown the roster.
        assert!(outcome.actions_applied() > 0);
        assert!(outcome.chips.len() > 1);
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let outcome = Experiment::new(workload())
            .on(AcceleratorClass::Edge)
            .with_styles(styles())
            .fast()
            .run()
            .unwrap();
        let json = outcome.to_json().unwrap();
        let back = ExperimentOutcome::from_json(&json).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(back.best(), outcome.best());
    }

    #[test]
    fn tampered_outcome_json_is_rejected() {
        assert!(matches!(
            ExperimentOutcome::from_json("{not json"),
            Err(HeraldError::Serialization(_))
        ));
        let empty =
            r#"{"workload":"w","accelerator":"a","metric":"Edp","best_index":0,"points":[]}"#;
        assert!(matches!(
            ExperimentOutcome::from_json(empty),
            Err(HeraldError::Serialization(_))
        ));
    }
}
